//! Elaboration of S-expressions into the kernel AST.
//!
//! The surface grammar (all forms fully parenthesized):
//!
//! ```text
//! expr  ::= int | "string" | true | false | void | x | prim
//!         | (lambda (param…) expr…)        param ::= x | (x τ)
//!         | (let ((x expr)…) expr…)
//!         | (letrec (defn…) expr…)
//!         | (if expr expr expr)
//!         | (begin expr…)
//!         | (set! x expr)
//!         | (tuple expr…) | (proj i expr)
//!         | (inst prim τ…)
//!         | (unit (import port…) (export port…) defn… [(init expr…)])
//!         | (compound (import port…) (export port…) (link clause…))
//!         | (invoke expr link…)            link ::= (type t τ) | (val x expr)
//!         | (seal expr τ)
//!         | (expr expr…)                   — application
//!
//! defn  ::= (define x expr) | (define x τ expr)
//!         | (defun (f param…) expr…)
//!         | (datatype t (ctor dtor τ)… pred)
//!         | (alias t τ) | (alias t κ τ)
//!
//! port  ::= (type t) | (type t κ) | x | (x τ)
//! clause ::= (expr [(with port…)] [(provides port…)])
//!
//! τ     ::= int | bool | str | void | t | (-> τ… τ) | (tuple τ…)
//!         | (hash τ) | (sig (import port…) (export port…)
//!                          [(init τ)] [(depends (t t)…)] [(where (t τ)…)])
//! κ     ::= * | (=> κ… κ)
//! ```

use units_kernel::{
    AliasDefn, Binding, CompoundExpr, DataDefn, DataVariant, Depend, Expr, InvokeExpr, Kind,
    LetrecExpr, LinkClause, LinkRenames, Param, Ports, PrimOp, SigEquation, Signature, Symbol, TyPort,
    TypeDefn, Ty, UnitExpr, ValDefn, ValPort,
};

use crate::error::ParseError;
use crate::sexpr::{read_all, read_one, SExpr};
use crate::span::Span;

/// Keywords that cannot be used as variable or port names.
pub const RESERVED: &[&str] = &[
    "lambda", "let", "letrec", "if", "begin", "set!", "tuple", "proj", "inst", "unit", "compound",
    "invoke", "seal", "define", "defun", "datatype", "alias", "import", "export", "link", "with",
    "provides", "init", "val", "type", "true", "false", "void", "sig", "depends", "where", "->", "as", "as-type",
    "=>", "*", "hash", "int", "bool", "str",
];

/// Parses one expression from source text.
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first syntax problem.
///
/// # Examples
///
/// ```
/// use units_syntax::parse_expr;
/// let e = parse_expr("(if (< 1 2) \"yes\" \"no\")")?;
/// assert!(!e.is_value());
/// # Ok::<(), units_syntax::ParseError>(())
/// ```
pub fn parse_expr(src: &str) -> Result<Expr, ParseError> {
    let _timer = units_trace::time("parse");
    let form = read_one(src)?;
    trace_forms("parse/expr", src, std::slice::from_ref(&form));
    expr(&form)
}

/// Parses a type expression from source text.
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed input.
pub fn parse_ty(src: &str) -> Result<Ty, ParseError> {
    ty(&read_one(src)?)
}

/// Parses a signature (the body of a `sig` type) from source text.
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed input, or if the type is not a
/// signature.
pub fn parse_signature(src: &str) -> Result<Signature, ParseError> {
    let sx = read_one(src)?;
    match ty(&sx)? {
        Ty::Sig(sig) => Ok(*sig),
        _ => Err(ParseError::new(sx.span(), "expected a signature type")),
    }
}

/// Parses a whole source file: any number of top-level definitions
/// followed by expressions. The result is a `letrec` over the definitions
/// whose body sequences the expressions (defaulting to `void` when there
/// are none).
///
/// # Errors
///
/// Returns a [`ParseError`] on malformed input.
///
/// # Examples
///
/// ```
/// use units_syntax::parse_file;
/// let program = parse_file(
///     "(define u (unit (import) (export) (init 42)))
///      (invoke u)",
/// )?;
/// # Ok::<(), units_syntax::ParseError>(())
/// ```
pub fn parse_file(src: &str) -> Result<Expr, ParseError> {
    let _timer = units_trace::time("parse");
    units_trace::faults::trip("parse/read")
        .map_err(|f| ParseError::new(Span::new(0, src.len()), f.to_string()))?;
    let forms = read_all(src)?;
    trace_forms("parse/file", src, &forms);
    let mut types = Vec::new();
    let mut vals = Vec::new();
    let mut exprs = Vec::new();
    for form in &forms {
        if is_defn(form) {
            match defn(form)? {
                Defn::Ty(t) => types.push(t),
                Defn::Val(v) => vals.push(v),
            }
        } else {
            exprs.push(expr(form)?);
        }
    }
    let body = if exprs.is_empty() { Expr::void() } else { Expr::seq(exprs) };
    if types.is_empty() && vals.is_empty() {
        Ok(body)
    } else {
        Ok(Expr::Letrec(std::sync::Arc::new(LetrecExpr { types, vals, body })))
    }
}

/// Emits one Parse-phase event summarizing a successful read: how many
/// top-level forms, leaf atoms, and source bytes, with the whole-input
/// span. Compiles to nothing without the `trace` feature.
fn trace_forms(kind: &'static str, src: &str, forms: &[SExpr]) {
    fn atoms(sx: &SExpr) -> u64 {
        match sx.as_list() {
            Some(items) => items.iter().map(atoms).sum(),
            None => 1,
        }
    }
    units_trace::emit(
        units_trace::Phase::Parse,
        kind,
        Some(units_trace::Span::new(0, src.len() as u32)),
        String::new,
        &[
            ("parse/forms", forms.len() as u64),
            ("parse/atoms", forms.iter().map(atoms).sum()),
            ("parse/bytes", src.len() as u64),
        ],
    );
}

fn is_defn(sx: &SExpr) -> bool {
    matches!(
        sx.as_list().and_then(|items| items.first()).and_then(SExpr::as_atom),
        Some("define" | "defun" | "datatype" | "alias")
    )
}

fn err(span: Span, msg: impl Into<String>) -> ParseError {
    ParseError::new(span, msg)
}

fn name(sx: &SExpr, what: &str) -> Result<Symbol, ParseError> {
    match sx {
        SExpr::Atom(a, span) => {
            if RESERVED.contains(&a.as_str()) {
                Err(err(*span, format!("`{a}` is a reserved word and cannot name a {what}")))
            } else if PrimOp::from_name(a).is_some() {
                Err(err(*span, format!("`{a}` is a primitive and cannot name a {what}")))
            } else {
                Ok(Symbol::new(a))
            }
        }
        other => Err(err(other.span(), format!("expected a {what} name"))),
    }
}

// ---------------------------------------------------------------------------
// Kinds and types
// ---------------------------------------------------------------------------

fn kind(sx: &SExpr) -> Result<Kind, ParseError> {
    match sx {
        SExpr::Atom(a, _) if a == "*" => Ok(Kind::Star),
        SExpr::List(items, span) => {
            let Some(rest) = sx.as_tagged("=>") else {
                return Err(err(*span, "expected a kind: `*` or `(=> κ… κ)`"));
            };
            if rest.len() < 2 {
                return Err(err(*span, "`=>` kind needs at least two components"));
            }
            let mut parts: Vec<Kind> = rest.iter().map(kind).collect::<Result<_, _>>()?;
            let mut out = parts
                .pop()
                .ok_or_else(|| err(*span, "`=>` kind needs at least two components"))?;
            while let Some(k) = parts.pop() {
                out = Kind::arrow(k, out);
            }
            let _ = items;
            Ok(out)
        }
        other => Err(err(other.span(), "expected a kind: `*` or `(=> κ… κ)`")),
    }
}

fn ty(sx: &SExpr) -> Result<Ty, ParseError> {
    match sx {
        SExpr::Atom(a, span) => match a.as_str() {
            "int" => Ok(Ty::Int),
            "bool" => Ok(Ty::Bool),
            "str" => Ok(Ty::Str),
            "void" => Ok(Ty::Void),
            _ if RESERVED.contains(&a.as_str()) => {
                Err(err(*span, format!("`{a}` is reserved and cannot be a type name")))
            }
            _ => Ok(Ty::Var(Symbol::new(a))),
        },
        SExpr::List(items, span) => {
            let head = items
                .first()
                .ok_or_else(|| err(*span, "empty list is not a type"))?;
            match head.as_atom() {
                Some("->") => {
                    if items.len() < 2 {
                        return Err(err(*span, "`->` type needs a result type"));
                    }
                    let mut parts: Vec<Ty> =
                        items[1..].iter().map(ty).collect::<Result<_, _>>()?;
                    let ret = parts
                        .pop()
                        .ok_or_else(|| err(*span, "`->` type needs a result type"))?;
                    Ok(Ty::arrow(parts, ret))
                }
                Some("tuple") => {
                    Ok(Ty::Tuple(items[1..].iter().map(ty).collect::<Result<_, _>>()?))
                }
                Some("hash") => {
                    if items.len() != 2 {
                        return Err(err(*span, "`hash` type takes exactly one element type"));
                    }
                    Ok(Ty::hash(ty(&items[1])?))
                }
                Some("sig") => Ok(Ty::sig(signature(&items[1..], *span)?)),
                _ => Err(err(*span, "expected a type")),
            }
        }
        other => Err(err(other.span(), "expected a type")),
    }
}

fn signature(clauses: &[SExpr], span: Span) -> Result<Signature, ParseError> {
    let mut imports = None;
    let mut exports = None;
    let mut init_ty = None;
    let mut depends = Vec::new();
    let mut equations = Vec::new();
    for clause in clauses {
        let cspan = clause.span();
        if let Some(rest) = clause.as_tagged("import") {
            if imports.replace(ports(rest)?).is_some() {
                return Err(err(cspan, "duplicate `import` clause"));
            }
        } else if let Some(rest) = clause.as_tagged("export") {
            if exports.replace(ports(rest)?).is_some() {
                return Err(err(cspan, "duplicate `export` clause"));
            }
        } else if let Some(rest) = clause.as_tagged("init") {
            match rest {
                [t] => {
                    if init_ty.replace(ty(t)?).is_some() {
                        return Err(err(cspan, "duplicate `init` clause"));
                    }
                }
                _ => return Err(err(cspan, "`init` takes exactly one type")),
            }
        } else if let Some(rest) = clause.as_tagged("depends") {
            for pair in rest {
                match pair.as_list() {
                    Some([e, i]) => depends.push(Depend {
                        export: name(e, "type")?,
                        import: name(i, "type")?,
                    }),
                    _ => return Err(err(pair.span(), "`depends` entries are `(t_e t_i)` pairs")),
                }
            }
        } else if let Some(rest) = clause.as_tagged("where") {
            for eq in rest {
                match eq.as_list() {
                    Some([t, body]) => equations.push(SigEquation {
                        name: name(t, "type")?,
                        kind: Kind::Star,
                        body: ty(body)?,
                    }),
                    Some([t, k, body]) => equations.push(SigEquation {
                        name: name(t, "type")?,
                        kind: kind(k)?,
                        body: ty(body)?,
                    }),
                    _ => return Err(err(eq.span(), "`where` entries are `(t [κ] τ)`")),
                }
            }
        } else {
            return Err(err(cspan, "unknown signature clause"));
        }
    }
    Ok(Signature {
        imports: imports.ok_or_else(|| err(span, "signature needs an `import` clause"))?,
        exports: exports.ok_or_else(|| err(span, "signature needs an `export` clause"))?,
        depends,
        equations,
        init_ty: init_ty.unwrap_or(Ty::Void),
    })
}

fn ports(items: &[SExpr]) -> Result<Ports, ParseError> {
    let mut out = Ports::new();
    for item in items {
        match item {
            SExpr::Atom(..) => out.vals.push(ValPort::untyped(name(item, "port")?)),
            SExpr::List(inner, span) => match inner.first().and_then(SExpr::as_atom) {
                Some("type") => match &inner[1..] {
                    [t] => out.types.push(TyPort::star(name(t, "type port")?)),
                    [t, k] => out
                        .types
                        .push(TyPort { name: name(t, "type port")?, kind: kind(k)? }),
                    _ => return Err(err(*span, "`(type t [κ])` expected")),
                },
                _ => match &inner[..] {
                    [x, t] => out.vals.push(ValPort::typed(name(x, "port")?, ty(t)?)),
                    _ => return Err(err(*span, "value ports are `x` or `(x τ)`")),
                },
            },
            other => return Err(err(other.span(), "expected a port declaration")),
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Definitions
// ---------------------------------------------------------------------------

enum Defn {
    Ty(TypeDefn),
    Val(ValDefn),
}

fn defn(sx: &SExpr) -> Result<Defn, ParseError> {
    let span = sx.span();
    if let Some(rest) = sx.as_tagged("define") {
        return match rest {
            [x, e] => Ok(Defn::Val(ValDefn { name: name(x, "definition")?, ty: None, body: expr(e)? })),
            [x, t, e] => Ok(Defn::Val(ValDefn {
                name: name(x, "definition")?,
                ty: Some(ty(t)?),
                body: expr(e)?,
            })),
            _ => Err(err(span, "`define` is `(define x [τ] expr)`")),
        };
    }
    if let Some(rest) = sx.as_tagged("defun") {
        let [header, body @ ..] = rest else {
            return Err(err(span, "`defun` is `(defun (f param…) expr…)`"));
        };
        let Some([f, params @ ..]) = header.as_list() else {
            return Err(err(header.span(), "`defun` header must be `(f param…)`"));
        };
        if body.is_empty() {
            return Err(err(span, "`defun` needs a body"));
        }
        let params = params.iter().map(param).collect::<Result<Vec<_>, _>>()?;
        let body = Expr::seq(body.iter().map(expr).collect::<Result<Vec<_>, _>>()?);
        return Ok(Defn::Val(ValDefn {
            name: name(f, "function")?,
            ty: None,
            body: Expr::lambda(params, body),
        }));
    }
    if let Some(rest) = sx.as_tagged("datatype") {
        let [t, middle @ .., pred] = rest else {
            return Err(err(span, "`datatype` is `(datatype t (ctor dtor τ)… pred)`"));
        };
        if middle.is_empty() {
            return Err(err(span, "`datatype` needs at least one variant"));
        }
        let variants = middle
            .iter()
            .map(|v| match v.as_list() {
                Some([c, d, payload]) => Ok(DataVariant {
                    ctor: name(c, "constructor")?,
                    dtor: name(d, "deconstructor")?,
                    payload: ty(payload)?,
                }),
                _ => Err(err(v.span(), "variants are `(ctor dtor τ)`")),
            })
            .collect::<Result<Vec<_>, _>>()?;
        return Ok(Defn::Ty(TypeDefn::Data(DataDefn {
            name: name(t, "datatype")?,
            variants,
            predicate: name(pred, "predicate")?,
        })));
    }
    if let Some(rest) = sx.as_tagged("alias") {
        return match rest {
            [t, body] => Ok(Defn::Ty(TypeDefn::Alias(AliasDefn {
                name: name(t, "alias")?,
                kind: Kind::Star,
                body: ty(body)?,
            }))),
            [t, k, body] => Ok(Defn::Ty(TypeDefn::Alias(AliasDefn {
                name: name(t, "alias")?,
                kind: kind(k)?,
                body: ty(body)?,
            }))),
            _ => Err(err(span, "`alias` is `(alias t [κ] τ)`")),
        };
    }
    Err(err(span, "expected a definition"))
}

fn param(sx: &SExpr) -> Result<Param, ParseError> {
    match sx {
        SExpr::Atom(..) => Ok(Param { name: name(sx, "parameter")?, ty: None }),
        SExpr::List(inner, span) => match &inner[..] {
            [x, t] => Ok(Param { name: name(x, "parameter")?, ty: Some(ty(t)?) }),
            _ => Err(err(*span, "parameters are `x` or `(x τ)`")),
        },
        other => Err(err(other.span(), "expected a parameter")),
    }
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

fn expr(sx: &SExpr) -> Result<Expr, ParseError> {
    match sx {
        SExpr::Int(n, _) => Ok(Expr::int(*n)),
        SExpr::Str(s, _) => Ok(Expr::str(s)),
        SExpr::Atom(a, span) => match a.as_str() {
            "true" => Ok(Expr::bool(true)),
            "false" => Ok(Expr::bool(false)),
            "void" => Ok(Expr::void()),
            _ => {
                if let Some(op) = PrimOp::from_name(a) {
                    Ok(Expr::prim(op))
                } else if RESERVED.contains(&a.as_str()) {
                    Err(err(*span, format!("`{a}` is a reserved word, not an expression")))
                } else {
                    Ok(Expr::var(Symbol::new(a)))
                }
            }
        },
        SExpr::List(items, span) => {
            let head = items.first().ok_or_else(|| err(*span, "empty application"))?;
            match head.as_atom() {
                Some("lambda") => {
                    let [params_sx, body @ ..] = &items[1..] else {
                        return Err(err(*span, "`lambda` is `(lambda (param…) expr…)`"));
                    };
                    let Some(params_list) = params_sx.as_list() else {
                        return Err(err(params_sx.span(), "`lambda` parameters must be a list"));
                    };
                    if body.is_empty() {
                        return Err(err(*span, "`lambda` needs a body"));
                    }
                    let params =
                        params_list.iter().map(param).collect::<Result<Vec<_>, _>>()?;
                    let body = Expr::seq(body.iter().map(expr).collect::<Result<Vec<_>, _>>()?);
                    Ok(Expr::lambda(params, body))
                }
                Some("let") => {
                    let [bindings_sx, body @ ..] = &items[1..] else {
                        return Err(err(*span, "`let` is `(let ((x expr)…) expr…)`"));
                    };
                    let Some(binding_list) = bindings_sx.as_list() else {
                        return Err(err(bindings_sx.span(), "`let` bindings must be a list"));
                    };
                    if body.is_empty() {
                        return Err(err(*span, "`let` needs a body"));
                    }
                    let bindings = binding_list
                        .iter()
                        .map(|b| match b.as_list() {
                            Some([x, e]) => {
                                Ok(Binding { name: name(x, "binding")?, expr: expr(e)? })
                            }
                            _ => Err(err(b.span(), "bindings are `(x expr)`")),
                        })
                        .collect::<Result<Vec<_>, _>>()?;
                    let body = Expr::seq(body.iter().map(expr).collect::<Result<Vec<_>, _>>()?);
                    Ok(Expr::Let(bindings, Box::new(body)))
                }
                Some("letrec") => {
                    let [defns_sx, body @ ..] = &items[1..] else {
                        return Err(err(*span, "`letrec` is `(letrec (defn…) expr…)`"));
                    };
                    let Some(defn_list) = defns_sx.as_list() else {
                        return Err(err(defns_sx.span(), "`letrec` definitions must be a list"));
                    };
                    if body.is_empty() {
                        return Err(err(*span, "`letrec` needs a body"));
                    }
                    let mut types = Vec::new();
                    let mut vals = Vec::new();
                    for d in defn_list {
                        match defn(d)? {
                            Defn::Ty(t) => types.push(t),
                            Defn::Val(v) => vals.push(v),
                        }
                    }
                    let body = Expr::seq(body.iter().map(expr).collect::<Result<Vec<_>, _>>()?);
                    Ok(Expr::Letrec(std::sync::Arc::new(LetrecExpr { types, vals, body })))
                }
                Some("if") => match &items[1..] {
                    [c, t, e] => Ok(Expr::if_(expr(c)?, expr(t)?, expr(e)?)),
                    _ => Err(err(*span, "`if` is `(if expr expr expr)`")),
                },
                Some("begin") => {
                    if items.len() < 2 {
                        return Err(err(*span, "`begin` needs at least one expression"));
                    }
                    Ok(Expr::seq(items[1..].iter().map(expr).collect::<Result<Vec<_>, _>>()?))
                }
                Some("set!") => match &items[1..] {
                    [x, e] => Ok(Expr::set(name(x, "assignment target")?, expr(e)?)),
                    _ => Err(err(*span, "`set!` is `(set! x expr)`")),
                },
                Some("tuple") => {
                    Ok(Expr::Tuple(items[1..].iter().map(expr).collect::<Result<Vec<_>, _>>()?))
                }
                Some("proj") => match &items[1..] {
                    [SExpr::Int(i, ispan), e] => {
                        let i = usize::try_from(*i)
                            .map_err(|_| err(*ispan, "projection index must be non-negative"))?;
                        Ok(Expr::Proj(i, Box::new(expr(e)?)))
                    }
                    _ => Err(err(*span, "`proj` is `(proj i expr)`")),
                },
                Some("inst") => {
                    let [p, ty_args @ ..] = &items[1..] else {
                        return Err(err(*span, "`inst` is `(inst prim τ…)`"));
                    };
                    let Some(op) = p.as_atom().and_then(PrimOp::from_name) else {
                        return Err(err(p.span(), "`inst` expects a primitive name"));
                    };
                    let ty_args = ty_args.iter().map(ty).collect::<Result<Vec<_>, _>>()?;
                    if ty_args.len() != op.ty_arity() {
                        return Err(err(
                            *span,
                            format!(
                                "`{op}` takes {} type argument(s), found {}",
                                op.ty_arity(),
                                ty_args.len()
                            ),
                        ));
                    }
                    Ok(Expr::Prim(op, ty_args))
                }
                Some("unit") => unit_expr(&items[1..], *span),
                Some("compound") => compound_expr(&items[1..], *span),
                Some("invoke") => invoke_expr(&items[1..], *span),
                Some("seal") => match &items[1..] {
                    [e, t] => {
                        let sig = match ty(t)? {
                            Ty::Sig(sig) => *sig,
                            _ => return Err(err(t.span(), "`seal` expects a signature type")),
                        };
                        Ok(Expr::seal(expr(e)?, sig))
                    }
                    _ => Err(err(*span, "`seal` is `(seal expr sig-type)`")),
                },
                Some(word)
                    if RESERVED.contains(&word)
                        && PrimOp::from_name(word).is_none()
                        && !matches!(word, "true" | "false" | "void") =>
                {
                    Err(err(head.span(), format!("`{word}` form is malformed or misplaced")))
                }
                _ => {
                    let func = expr(head)?;
                    let args =
                        items[1..].iter().map(expr).collect::<Result<Vec<_>, _>>()?;
                    Ok(Expr::App(Box::new(func), args))
                }
            }
        }
    }
}

fn unit_expr(clauses: &[SExpr], span: Span) -> Result<Expr, ParseError> {
    let [imports_sx, exports_sx, rest @ ..] = clauses else {
        return Err(err(span, "`unit` needs `(import …)` and `(export …)` clauses"));
    };
    let imports = ports(
        imports_sx
            .as_tagged("import")
            .ok_or_else(|| err(imports_sx.span(), "expected `(import port…)`"))?,
    )?;
    let exports = ports(
        exports_sx
            .as_tagged("export")
            .ok_or_else(|| err(exports_sx.span(), "expected `(export port…)`"))?,
    )?;
    let mut types = Vec::new();
    let mut vals = Vec::new();
    let mut init = None;
    for (i, form) in rest.iter().enumerate() {
        if let Some(init_body) = form.as_tagged("init") {
            if i + 1 != rest.len() {
                return Err(err(form.span(), "`init` must be the last clause of a unit"));
            }
            if init_body.is_empty() {
                return Err(err(form.span(), "`init` needs at least one expression"));
            }
            init =
                Some(Expr::seq(init_body.iter().map(expr).collect::<Result<Vec<_>, _>>()?));
        } else {
            match defn(form)? {
                Defn::Ty(t) => types.push(t),
                Defn::Val(v) => vals.push(v),
            }
        }
    }
    Ok(Expr::unit(UnitExpr {
        imports,
        exports,
        types,
        vals,
        init: init.unwrap_or_else(Expr::void),
    }))
}

fn compound_expr(clauses: &[SExpr], span: Span) -> Result<Expr, ParseError> {
    let [imports_sx, exports_sx, link_sx] = clauses else {
        return Err(err(span, "`compound` is `(compound (import …) (export …) (link clause…))`"));
    };
    let imports = ports(
        imports_sx
            .as_tagged("import")
            .ok_or_else(|| err(imports_sx.span(), "expected `(import port…)`"))?,
    )?;
    let exports = ports(
        exports_sx
            .as_tagged("export")
            .ok_or_else(|| err(exports_sx.span(), "expected `(export port…)`"))?,
    )?;
    let link_items = link_sx
        .as_tagged("link")
        .ok_or_else(|| err(link_sx.span(), "expected `(link clause…)`"))?;
    let links = link_items
        .iter()
        .map(|clause| {
            let Some([e, opts @ ..]) = clause.as_list() else {
                return Err(err(clause.span(), "link clauses are `(expr [(with …)] [(provides …)])`"));
            };
            let mut with = Ports::new();
            let mut provides = Ports::new();
            let mut renames = LinkRenames::default();
            for opt in opts {
                if let Some(w) = opt.as_tagged("with") {
                    let (p, val_pairs, ty_pairs) = link_ports(w)?;
                    with = p;
                    renames.import_vals = val_pairs;
                    renames.import_tys = ty_pairs;
                } else if let Some(p) = opt.as_tagged("provides") {
                    let (ps, val_pairs, ty_pairs) = link_ports(p)?;
                    provides = ps;
                    renames.export_vals = val_pairs;
                    renames.export_tys = ty_pairs;
                } else {
                    return Err(err(opt.span(), "expected `(with …)` or `(provides …)`"));
                }
            }
            Ok(LinkClause { expr: expr(e)?, with, provides, renames })
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(Expr::compound(CompoundExpr { imports, exports, links }))
}

/// Ports in `with`/`provides` clauses, which additionally allow MzScheme's
/// source/destination pairs: `(as inner outer [τ])` for value ports and
/// `(as-type inner outer [κ])` for type ports. Returns the ports (under
/// their inner names) plus the value and type rename pairs.
#[allow(clippy::type_complexity)]
fn link_ports(
    items: &[SExpr],
) -> Result<(Ports, Vec<(Symbol, Symbol)>, Vec<(Symbol, Symbol)>), ParseError> {
    let mut plain = Vec::new();
    let mut out = Ports::new();
    let mut val_pairs = Vec::new();
    let mut ty_pairs = Vec::new();
    for item in items {
        if let Some(rest) = item.as_tagged("as") {
            match rest {
                [inner, outer] => {
                    let inner = name(inner, "port")?;
                    val_pairs.push((inner.clone(), name(outer, "port")?));
                    out.vals.push(ValPort::untyped(inner));
                }
                [inner, outer, t] => {
                    let inner = name(inner, "port")?;
                    val_pairs.push((inner.clone(), name(outer, "port")?));
                    out.vals.push(ValPort::typed(inner, ty(t)?));
                }
                _ => return Err(err(item.span(), "`as` links are `(as inner outer [τ])`")),
            }
        } else if let Some(rest) = item.as_tagged("as-type") {
            match rest {
                [inner, outer] => {
                    let inner = name(inner, "type port")?;
                    ty_pairs.push((inner.clone(), name(outer, "type port")?));
                    out.types.push(TyPort::star(inner));
                }
                [inner, outer, k] => {
                    let inner = name(inner, "type port")?;
                    ty_pairs.push((inner.clone(), name(outer, "type port")?));
                    out.types.push(TyPort { name: inner, kind: kind(k)? });
                }
                _ => {
                    return Err(err(
                        item.span(),
                        "`as-type` links are `(as-type inner outer [κ])`",
                    ))
                }
            }
        } else {
            plain.push(item.clone());
        }
    }
    let plain_ports = ports(&plain)?;
    out.types.extend(plain_ports.types);
    out.vals.extend(plain_ports.vals);
    Ok((out, val_pairs, ty_pairs))
}

fn invoke_expr(clauses: &[SExpr], span: Span) -> Result<Expr, ParseError> {
    let [target, links @ ..] = clauses else {
        return Err(err(span, "`invoke` is `(invoke expr link…)`"));
    };
    let mut ty_links = Vec::new();
    let mut val_links = Vec::new();
    for link in links {
        if let Some(rest) = link.as_tagged("type") {
            match rest {
                [t, t_actual] => ty_links.push((name(t, "type link")?, ty(t_actual)?)),
                _ => return Err(err(link.span(), "type links are `(type t τ)`")),
            }
        } else if let Some(rest) = link.as_tagged("val") {
            match rest {
                [x, e] => val_links.push((name(x, "value link")?, expr(e)?)),
                _ => return Err(err(link.span(), "value links are `(val x expr)`")),
            }
        } else {
            return Err(err(link.span(), "invoke links are `(type t τ)` or `(val x expr)`"));
        }
    }
    Ok(Expr::invoke(InvokeExpr { target: expr(target)?, ty_links, val_links }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_literals_and_vars() {
        assert_eq!(parse_expr("42").unwrap(), Expr::int(42));
        assert_eq!(parse_expr("true").unwrap(), Expr::bool(true));
        assert_eq!(parse_expr("void").unwrap(), Expr::void());
        assert_eq!(parse_expr("\"hi\"").unwrap(), Expr::str("hi"));
        assert_eq!(parse_expr("x").unwrap(), Expr::var("x"));
    }

    #[test]
    fn prims_parse_as_prims_not_vars() {
        assert_eq!(parse_expr("+").unwrap(), Expr::prim(PrimOp::Add));
        assert_eq!(
            parse_expr("(+ 1 2)").unwrap(),
            Expr::prim2(PrimOp::Add, Expr::int(1), Expr::int(2))
        );
    }

    #[test]
    fn inst_carries_type_arguments() {
        match parse_expr("(inst hash-new int)").unwrap() {
            Expr::Prim(PrimOp::HashNew, tys) => assert_eq!(tys, vec![Ty::Int]),
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse_expr("(inst hash-new)").is_err());
        assert!(parse_expr("(inst + int)").is_err());
    }

    #[test]
    fn lambda_bodies_sequence() {
        match parse_expr("(lambda (x (y int)) (display \"a\") x)").unwrap() {
            Expr::Lambda(lam) => {
                assert_eq!(lam.params.len(), 2);
                assert_eq!(lam.params[1].ty, Some(Ty::Int));
                assert!(matches!(lam.body, Expr::Seq(_)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn reserved_words_cannot_bind() {
        assert!(parse_expr("(lambda (unit) unit)").is_err());
        assert!(parse_expr("(let ((+ 1)) 2)").is_err());
        assert!(parse_expr("(set! define 1)").is_err());
    }

    #[test]
    fn parses_unit_with_defns_and_init() {
        let src = "(unit (import (type info) (error (-> str void)))
                         (export (new (-> db)))
                         (datatype db (mk unmk (hash info)) (no unno void) db?)
                         (define new (-> db) (lambda () (mk (inst hash-new info))))
                         (init (display \"up\")))";
        match parse_expr(src).unwrap() {
            Expr::Unit(u) => {
                assert_eq!(u.imports.types.len(), 1);
                assert_eq!(u.imports.vals.len(), 1);
                assert_eq!(u.types.len(), 1);
                assert_eq!(u.vals.len(), 1);
                assert!(matches!(u.init, Expr::App(..)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unit_init_defaults_to_void_and_must_be_last() {
        match parse_expr("(unit (import) (export))").unwrap() {
            Expr::Unit(u) => assert_eq!(u.init, Expr::void()),
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse_expr("(unit (import) (export) (init 1) (define x 2))").is_err());
    }

    #[test]
    fn parses_compound_links() {
        let src = "(compound (import a) (export b)
                      (link (u1 (with a) (provides c))
                            (u2 (with c) (provides b))))";
        match parse_expr(src).unwrap() {
            Expr::Compound(c) => {
                assert_eq!(c.links.len(), 2);
                assert_eq!(c.links[0].provides.vals[0].name.as_str(), "c");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_invoke_links() {
        let src = "(invoke u (type info int) (val error (lambda (s) void)))";
        match parse_expr(src).unwrap() {
            Expr::Invoke(inv) => {
                assert_eq!(inv.ty_links.len(), 1);
                assert_eq!(inv.ty_links[0].1, Ty::Int);
                assert_eq!(inv.val_links.len(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_types() {
        assert_eq!(parse_ty("(-> int bool)").unwrap(), Ty::arrow(vec![Ty::Int], Ty::Bool));
        assert_eq!(parse_ty("(-> str)").unwrap(), Ty::thunk(Ty::Str));
        assert_eq!(parse_ty("(hash info)").unwrap(), Ty::hash(Ty::var("info")));
        assert_eq!(
            parse_ty("(tuple int str)").unwrap(),
            Ty::Tuple(vec![Ty::Int, Ty::Str])
        );
    }

    #[test]
    fn parses_signatures_with_depends_and_where() {
        let sig = parse_signature(
            "(sig (import (type a)) (export (type b) (f (-> a b)))
                  (init void) (depends (b a)) (where (c (-> a a))))",
        )
        .unwrap();
        assert_eq!(sig.depends, vec![Depend::new("b", "a")]);
        assert_eq!(sig.equations.len(), 1);
        assert_eq!(sig.init_ty, Ty::Void);
    }

    #[test]
    fn parse_file_wraps_defns_in_letrec() {
        let e = parse_file("(define x 1) (define y 2) (+ x y)").unwrap();
        match e {
            Expr::Letrec(lr) => {
                assert_eq!(lr.vals.len(), 2);
                assert!(matches!(lr.body, Expr::App(..)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_file_without_defns_is_plain_expr() {
        assert_eq!(parse_file("(+ 1 2)").unwrap(), parse_expr("(+ 1 2)").unwrap());
        assert_eq!(parse_file("").unwrap(), Expr::void());
    }

    #[test]
    fn defun_sugar_builds_lambda() {
        let e = parse_file("(defun (id x) x) (id 3)").unwrap();
        match e {
            Expr::Letrec(lr) => assert!(matches!(lr.vals[0].body, Expr::Lambda(_))),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn alias_and_kinds() {
        let e = parse_file("(alias env (-> str int)) void").unwrap();
        match e {
            Expr::Letrec(lr) => match &lr.types[0] {
                TypeDefn::Alias(a) => {
                    assert_eq!(a.kind, Kind::Star);
                    assert_eq!(a.body, Ty::arrow(vec![Ty::Str], Ty::Int));
                }
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
        // explicit kind
        let e = parse_file("(alias t (=> * * *) (-> int int)) void").unwrap();
        match e {
            Expr::Letrec(lr) => match &lr.types[0] {
                TypeDefn::Alias(a) => assert_eq!(a.kind.arity(), 2),
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn seal_requires_signature_type() {
        assert!(parse_expr("(seal u (sig (import) (export)))").is_ok());
        assert!(parse_expr("(seal u int)").is_err());
    }

    #[test]
    fn error_positions_are_reported() {
        let src = "(lambda (x)\n  (set! if 1))";
        let e = parse_expr(src).unwrap_err();
        let (line, _) = e.span.line_col(src);
        assert_eq!(line, 2);
    }
}
