//! Surface syntax for the unit language: an S-expression reader, a parser
//! into the [`units_kernel`] AST, and a round-tripping pretty-printer.
//!
//! The paper presents units in a semi-graphical notation backed by the
//! textual grammars of Figs. 9/13/16; this crate is the textual front end
//! (the substitution is documented in DESIGN.md §6).
//!
//! # Example
//!
//! ```
//! use units_syntax::{parse_expr, pretty_expr};
//!
//! let src = "(unit (import even) (export odd)
//!              (define odd (lambda (n) (if (= n 0) false (even (- n 1)))))
//!              (init (odd 13)))";
//! let unit = parse_expr(src)?;
//! assert!(unit.is_value());
//! let printed = pretty_expr(&unit);
//! assert_eq!(parse_expr(&printed)?, unit);
//! # Ok::<(), units_syntax::ParseError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod parser;
mod pretty;
mod sexpr;
mod span;

pub use error::ParseError;
pub use parser::{parse_expr, parse_file, parse_signature, parse_ty, RESERVED};
pub use pretty::{pretty_expr, pretty_expr_indent, pretty_signature, pretty_ty};
pub use sexpr::{read_all, read_one, SExpr};
pub use span::Span;
