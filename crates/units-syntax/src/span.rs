//! Source locations for diagnostics.

use std::fmt;

/// A half-open byte range into a source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
}

impl Span {
    /// Creates a span covering `start..end`.
    pub fn new(start: usize, end: usize) -> Span {
        Span { start, end }
    }

    /// The smallest span covering both inputs.
    pub fn join(self, other: Span) -> Span {
        Span { start: self.start.min(other.start), end: self.end.max(other.end) }
    }

    /// Computes the 1-based line and column of the span's start in `src`.
    pub fn line_col(&self, src: &str) -> (usize, usize) {
        let mut line = 1;
        let mut col = 1;
        for (i, ch) in src.char_indices() {
            if i >= self.start {
                break;
            }
            if ch == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        (line, col)
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_covers_both() {
        assert_eq!(Span::new(3, 5).join(Span::new(1, 4)), Span::new(1, 5));
    }

    #[test]
    fn line_col_counts_newlines() {
        let src = "ab\ncd\nef";
        assert_eq!(Span::new(0, 1).line_col(src), (1, 1));
        assert_eq!(Span::new(4, 5).line_col(src), (2, 2));
        assert_eq!(Span::new(6, 7).line_col(src), (3, 1));
    }
}
