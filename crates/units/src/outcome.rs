//! What runs a program, and what running one produces.
//!
//! [`Backend`] selects one of the three evaluators; [`Outcome`] is the
//! observable result every one of them returns. Both are small value
//! types shared by the [`Engine`](crate::Engine) session API and the
//! `units-serve` request loop.

use crate::observe::Observation;

/// Which evaluator runs a program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// The cells-based production evaluator (§4.1.6).
    #[default]
    Compiled,
    /// The substitution-based reference reducer (Fig. 11).
    Reducer,
    /// The flat-bytecode dispatch-loop VM: the resolved form lowered to
    /// a stack ISA over interned symbols (see `units_compile::lower` and
    /// `units_runtime::vm`).
    Bytecode,
}

/// The result of running a program: what it computed and what it printed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Outcome {
    /// The observable part of the final value.
    pub value: Observation,
    /// Everything `display` wrote, in order.
    pub output: Vec<String>,
}
