//! The unified error type of the facade.

use std::fmt;

use units_check::CheckError;
use units_runtime::RuntimeError;
use units_syntax::ParseError;

/// Anything that can go wrong between source text and a value.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// The source does not parse.
    Parse(ParseError),
    /// The program fails context or type checking.
    Check(Vec<CheckError>),
    /// The program signalled a run-time error.
    Runtime(RuntimeError),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse(e) => write!(f, "syntax error: {e}"),
            Error::Check(errs) => {
                write!(f, "check error")?;
                for e in errs {
                    write!(f, ": {e}")?;
                }
                Ok(())
            }
            Error::Runtime(e) => write!(f, "runtime error: {e}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<ParseError> for Error {
    fn from(e: ParseError) -> Self {
        Error::Parse(e)
    }
}

impl From<Vec<CheckError>> for Error {
    fn from(e: Vec<CheckError>) -> Self {
        Error::Check(e)
    }
}

impl From<CheckError> for Error {
    fn from(e: CheckError) -> Self {
        Error::Check(vec![e])
    }
}

impl From<RuntimeError> for Error {
    fn from(e: RuntimeError) -> Self {
        Error::Runtime(e)
    }
}

impl Error {
    /// The runtime error, if this is one (convenient in tests).
    pub fn as_runtime(&self) -> Option<&RuntimeError> {
        match self {
            Error::Runtime(e) => Some(e),
            _ => None,
        }
    }

    /// The check errors, if any.
    pub fn as_check(&self) -> Option<&[CheckError]> {
        match self {
            Error::Check(errs) => Some(errs),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: Error = RuntimeError::DivisionByZero.into();
        assert!(e.to_string().contains("division"));
        assert!(e.as_runtime().is_some());
        assert!(e.as_check().is_none());

        let e: Error = CheckError::Unbound { name: "x".into() }.into();
        assert_eq!(e.as_check().map(<[_]>::len), Some(1));
    }
}
