//! The unified error type of the facade.
//!
//! Every failure between source text and a value — parsing, the static
//! checks of Figs. 10/14/15/19, separate-compilation artifacts (§2),
//! dynamic linking (§3.4), evaluation, and resource budgets — surfaces
//! as one [`Error`]. The [`Display`](fmt::Display) form of a check
//! failure names the figure whose rule fired, and
//! [`source`](std::error::Error::source) chains reach the underlying
//! error for callers that walk causes.

use std::fmt;

use units_check::CheckError;
use units_compile::{ArtifactError, DynlinkError};
use units_runtime::{Resource, RuntimeError};
use units_syntax::ParseError;

/// Anything that can go wrong between source text and a value.
///
/// Marked `#[non_exhaustive]`: downstream matches must keep a wildcard
/// arm, so future failure classes can be added without a breaking
/// release.
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// The source does not parse.
    Parse(ParseError),
    /// The program fails context or type checking.
    Check(Vec<CheckError>),
    /// The program signalled a run-time error.
    Runtime(RuntimeError),
    /// Publishing or loading a separate-compilation artifact failed.
    Artifact(ArtifactError),
    /// A dynamic load from an [`Archive`](crate::Archive) was refused.
    Dynlink(DynlinkError),
    /// Evaluation exceeded a configured [`Limits`](crate::Limits) budget.
    ResourceExhausted {
        /// Which budget ran out.
        resource: Resource,
        /// The configured limit.
        limit: u64,
    },
    /// A [`Loaded`](crate::Loaded) handle outlived its
    /// [`Engine`](crate::Engine): the handle owns the artifact, but the
    /// session that holds the cache, limits, and fallback policy is
    /// gone, so there is nothing to run on.
    SessionClosed,
    /// A panic escaped a pipeline stage and was caught at the engine's
    /// isolation boundary — the session stays usable, the run does not.
    Internal {
        /// The pipeline stage that panicked (`"load"`, `"run"`,
        /// `"batch-load"`, …).
        stage: &'static str,
        /// The panic payload, rendered.
        message: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse(e) => write!(f, "syntax error: {e}"),
            Error::Check(errs) => {
                write!(f, "check error")?;
                for e in errs {
                    write!(f, ": [{}] {e}", e.figure())?;
                }
                Ok(())
            }
            Error::Runtime(e) => write!(f, "runtime error: {e}"),
            Error::Artifact(e) => write!(f, "artifact error: {e}"),
            Error::Dynlink(e) => write!(f, "dynamic-link error: {e}"),
            Error::ResourceExhausted { resource, limit } => {
                write!(f, "evaluation exceeded its {resource} budget of {limit}")
            }
            Error::SessionClosed => {
                write!(f, "engine session closed: the Engine behind this handle was dropped")
            }
            Error::Internal { stage, message } => {
                write!(f, "internal error in {stage}: {message}")
            }
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Parse(e) => Some(e),
            Error::Check(errs) => errs.first().map(|e| e as _),
            Error::Runtime(e) => Some(e),
            Error::Artifact(e) => Some(e),
            Error::Dynlink(e) => Some(e),
            Error::ResourceExhausted { .. } | Error::SessionClosed | Error::Internal { .. } => {
                None
            }
        }
    }
}

impl From<ParseError> for Error {
    fn from(e: ParseError) -> Self {
        Error::Parse(e)
    }
}

impl From<Vec<CheckError>> for Error {
    fn from(e: Vec<CheckError>) -> Self {
        Error::Check(e)
    }
}

impl From<CheckError> for Error {
    fn from(e: CheckError) -> Self {
        Error::Check(vec![e])
    }
}

impl From<RuntimeError> for Error {
    fn from(e: RuntimeError) -> Self {
        match e {
            RuntimeError::ResourceExhausted { resource, limit } => {
                Error::ResourceExhausted { resource, limit }
            }
            other => Error::Runtime(other),
        }
    }
}

impl From<ArtifactError> for Error {
    fn from(e: ArtifactError) -> Self {
        Error::Artifact(e)
    }
}

impl From<DynlinkError> for Error {
    fn from(e: DynlinkError) -> Self {
        Error::Dynlink(e)
    }
}

impl Error {
    /// The runtime error, if this is one (convenient in tests).
    pub fn as_runtime(&self) -> Option<&RuntimeError> {
        match self {
            Error::Runtime(e) => Some(e),
            _ => None,
        }
    }

    /// The check errors, if any.
    pub fn as_check(&self) -> Option<&[CheckError]> {
        match self {
            Error::Check(errs) => Some(errs),
            _ => None,
        }
    }

    /// The exhausted resource and its limit, if a budget ran out.
    pub fn as_resource_exhausted(&self) -> Option<(Resource, u64)> {
        match self {
            Error::ResourceExhausted { resource, limit } => Some((*resource, *limit)),
            _ => None,
        }
    }

    /// The stage and panic payload, if a caught panic produced this error.
    pub fn as_internal(&self) -> Option<(&'static str, &str)> {
        match self {
            Error::Internal { stage, message } => Some((stage, message)),
            _ => None,
        }
    }

    /// Whether this error was deliberately fired by an armed
    /// [`FaultPlane`](units_trace::faults::FaultPlane) schedule — either
    /// as a typed injected error or as an injected panic caught at an
    /// engine boundary.
    pub fn is_injected(&self) -> bool {
        match self {
            Error::Runtime(RuntimeError::Injected { .. }) => true,
            Error::Artifact(ArtifactError::Injected { .. }) => true,
            Error::Dynlink(DynlinkError::Injected { .. }) => true,
            Error::Check(errs) => {
                errs.iter().any(|e| matches!(e, CheckError::Injected { .. }))
            }
            Error::Parse(e) => e.to_string().contains("injected fault at "),
            Error::Internal { message, .. } => message.starts_with("injected panic at "),
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: Error = RuntimeError::DivisionByZero.into();
        assert!(e.to_string().contains("division"));
        assert!(e.as_runtime().is_some());
        assert!(e.as_check().is_none());

        let e: Error = CheckError::Unbound { name: "x".into() }.into();
        assert_eq!(e.as_check().map(<[_]>::len), Some(1));
    }

    #[test]
    fn check_display_names_the_figure() {
        let e: Error = CheckError::Unbound { name: "x".into() }.into();
        assert!(e.to_string().contains("[Fig. 10]"), "{e}");
    }

    #[test]
    fn resource_exhaustion_is_its_own_variant() {
        let e: Error =
            RuntimeError::ResourceExhausted { resource: Resource::Fuel, limit: 7 }.into();
        assert_eq!(e.as_resource_exhausted(), Some((Resource::Fuel, 7)));
        assert!(e.as_runtime().is_none());
        assert!(e.to_string().contains("fuel budget of 7"));
    }

    #[test]
    fn internal_errors_carry_stage_and_payload() {
        let e = Error::Internal { stage: "run", message: "index out of bounds".into() };
        assert_eq!(e.as_internal(), Some(("run", "index out of bounds")));
        assert!(e.to_string().contains("internal error in run"));
        assert!(!e.is_injected());
        let e = Error::Internal {
            stage: "run",
            message: "injected panic at reduce/step (hit 3)".into(),
        };
        assert!(e.is_injected());
        let e: Error = RuntimeError::Injected { site: "reduce/step", hit: 1 }.into();
        assert!(e.is_injected());
    }

    #[test]
    fn sources_chain_to_the_underlying_error() {
        use std::error::Error as _;
        let e: Error = RuntimeError::DivisionByZero.into();
        assert!(e.source().is_some());
        let e: Error = units_compile::DynlinkError::NotAUnit.into();
        assert!(matches!(e, Error::Dynlink(_)));
        assert!(e.source().is_some());
    }
}
