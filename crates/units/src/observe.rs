//! Observations: a common, comparable view of results from the two
//! backends.
//!
//! The cells backend yields [`units_runtime::Value`]s; the substitution
//! reducer yields value [`Expr`]s. An [`Observation`] projects both onto
//! the observable (first-order) fragment so the differential test suite
//! can assert that the two semantics agree — the executable version of
//! the paper's claim that the Fig. 12 compilation implements the Fig. 11
//! rules.

use std::fmt;

use units_kernel::{Expr, Lit};
use units_runtime::Value;

/// The observable part of a result value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Observation {
    /// An integer result.
    Int(i64),
    /// A boolean result.
    Bool(bool),
    /// A string result.
    Str(String),
    /// The void result.
    Void,
    /// A tuple of observations.
    Tuple(Vec<Observation>),
    /// A datatype value: type name, variant index, payload.
    Variant(String, usize, Box<Observation>),
    /// A higher-order or stateful result, summarized by its shape
    /// ("procedure", "unit", "hash", …). Two opaque observations with the
    /// same shape are considered equal.
    Opaque(&'static str),
}

impl fmt::Display for Observation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Observation::Int(n) => write!(f, "{n}"),
            Observation::Bool(b) => write!(f, "{b}"),
            Observation::Str(s) => write!(f, "{s:?}"),
            Observation::Void => f.write_str("void"),
            Observation::Tuple(items) => {
                f.write_str("⟨")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("⟩")
            }
            Observation::Variant(ty, tag, payload) => write!(f, "({ty}·{tag} {payload})"),
            Observation::Opaque(shape) => write!(f, "#⟨{shape}⟩"),
        }
    }
}

/// Projects a runtime value (cells backend) onto its observation.
pub fn observe_value(value: &Value) -> Observation {
    match value {
        Value::Int(n) => Observation::Int(*n),
        Value::Bool(b) => Observation::Bool(*b),
        Value::Str(s) => Observation::Str(s.to_string()),
        Value::Void => Observation::Void,
        Value::Tuple(items) => Observation::Tuple(items.iter().map(observe_value).collect()),
        Value::Variant(v) => Observation::Variant(
            v.ty_name.as_str().to_string(),
            v.tag,
            Box::new(observe_value(&v.payload)),
        ),
        Value::Closure(_) => Observation::Opaque("procedure"),
        Value::Prim(_) => Observation::Opaque("procedure"),
        Value::Data(_) => Observation::Opaque("procedure"),
        Value::Hash(_) => Observation::Opaque("hash"),
        Value::Unit(_) => Observation::Opaque("unit"),
    }
}

/// Projects a value expression (substitution reducer) onto its
/// observation.
///
/// # Panics
///
/// Panics when given a non-value expression — callers observe only the
/// results of complete reductions.
pub fn observe_expr(expr: &Expr) -> Observation {
    assert!(expr.is_value(), "observe_expr requires a value, got a non-value");
    match expr {
        Expr::Lit(Lit::Int(n)) => Observation::Int(*n),
        Expr::Lit(Lit::Bool(b)) => Observation::Bool(*b),
        Expr::Lit(Lit::Str(s)) => Observation::Str(s.to_string()),
        Expr::Lit(Lit::Void) => Observation::Void,
        Expr::Tuple(items) => Observation::Tuple(items.iter().map(observe_expr).collect()),
        Expr::Variant(v) => Observation::Variant(
            v.ty_name.as_str().to_string(),
            v.tag,
            Box::new(observe_expr(&v.payload)),
        ),
        Expr::Lambda(_) | Expr::Prim(..) | Expr::Data(_) => Observation::Opaque("procedure"),
        Expr::Loc(_) => Observation::Opaque("hash"),
        Expr::Unit(_) => Observation::Opaque("unit"),
        _ => unreachable!("is_value covers all value forms"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::rc::Rc;

    #[test]
    fn both_projections_agree_on_ground_values() {
        assert_eq!(observe_value(&Value::Int(3)), observe_expr(&Expr::int(3)));
        assert_eq!(observe_value(&Value::str("x")), observe_expr(&Expr::str("x")));
        assert_eq!(observe_value(&Value::Void), observe_expr(&Expr::void()));
        assert_eq!(
            observe_value(&Value::Tuple(Rc::new(vec![Value::Bool(true)]))),
            observe_expr(&Expr::Tuple(vec![Expr::bool(true)]))
        );
    }

    #[test]
    fn higher_order_results_are_opaque_by_shape() {
        let lam = Expr::lambda(vec![], Expr::void());
        assert_eq!(observe_expr(&lam), Observation::Opaque("procedure"));
    }

    #[test]
    #[should_panic(expected = "requires a value")]
    fn non_values_panic() {
        let _ = observe_expr(&Expr::var("x"));
    }

    #[test]
    fn display_is_readable() {
        let o = Observation::Tuple(vec![
            Observation::Int(1),
            Observation::Variant("db".into(), 0, Box::new(Observation::Void)),
        ]);
        assert_eq!(o.to_string(), "⟨1, (db·0 void)⟩");
    }
}
