//! Observations: a common, comparable view of results from the two
//! backends.
//!
//! The cells backend yields [`units_runtime::Value`]s; the substitution
//! reducer yields value [`Expr`]s. An [`Observation`] projects both onto
//! the observable (first-order) fragment so the differential test suite
//! can assert that the two semantics agree — the executable version of
//! the paper's claim that the Fig. 12 compilation implements the Fig. 11
//! rules.
//!
//! With the `trace` feature, [`diagnose_divergence`] replays a program on
//! both backends with event capture on and names the exact reduction step
//! at which their primitive-call streams part ways.

use std::fmt;

use units_kernel::{Expr, Lit, Ports};
use units_runtime::Value;

/// The observable part of a result value.
///
/// Equality is *shape* equality on the opaque fragment: two opaque
/// observations with the same shape compare equal even when their
/// `exports` details differ. The detail exists so mismatch reports on
/// higher-order results say *which* unit came back, not just "a unit".
#[derive(Debug, Clone)]
pub enum Observation {
    /// An integer result.
    Int(i64),
    /// A boolean result.
    Bool(bool),
    /// A string result.
    Str(String),
    /// The void result.
    Void,
    /// A tuple of observations.
    Tuple(Vec<Observation>),
    /// A datatype value: type name, variant index, payload.
    Variant(String, usize, Box<Observation>),
    /// A higher-order or stateful result, summarized by its shape
    /// ("procedure", "unit", "hash", …). For units, `exports` lists the
    /// value-export names (sorted); equality ignores it.
    Opaque {
        /// The value's shape.
        shape: &'static str,
        /// For units, the sorted value-export names; empty otherwise.
        exports: Vec<String>,
    },
}

impl Observation {
    /// An opaque observation with no detail.
    pub fn opaque(shape: &'static str) -> Observation {
        Observation::Opaque { shape, exports: Vec::new() }
    }
}

impl PartialEq for Observation {
    fn eq(&self, other: &Observation) -> bool {
        match (self, other) {
            (Observation::Int(a), Observation::Int(b)) => a == b,
            (Observation::Bool(a), Observation::Bool(b)) => a == b,
            (Observation::Str(a), Observation::Str(b)) => a == b,
            (Observation::Void, Observation::Void) => true,
            (Observation::Tuple(a), Observation::Tuple(b)) => a == b,
            (Observation::Variant(ta, ia, pa), Observation::Variant(tb, ib, pb)) => {
                ta == tb && ia == ib && pa == pb
            }
            // Shape-only: export details are informational.
            (
                Observation::Opaque { shape: a, .. },
                Observation::Opaque { shape: b, .. },
            ) => a == b,
            _ => false,
        }
    }
}

impl Eq for Observation {}

impl fmt::Display for Observation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Observation::Int(n) => write!(f, "{n}"),
            Observation::Bool(b) => write!(f, "{b}"),
            Observation::Str(s) => write!(f, "{s:?}"),
            Observation::Void => f.write_str("void"),
            Observation::Tuple(items) => {
                f.write_str("⟨")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("⟩")
            }
            Observation::Variant(ty, tag, payload) => write!(f, "({ty}·{tag} {payload})"),
            Observation::Opaque { shape, exports } => {
                if exports.is_empty() {
                    write!(f, "#⟨{shape}⟩")
                } else {
                    write!(f, "#⟨{shape} exports: {}⟩", exports.join(" "))
                }
            }
        }
    }
}

/// The sorted value-export names of a unit interface.
fn export_names(exports: &Ports) -> Vec<String> {
    let mut names: Vec<String> =
        exports.vals.iter().map(|p| p.name.as_str().to_string()).collect();
    names.sort_unstable();
    names
}

/// Projects a runtime value (cells backend) onto its observation.
pub fn observe_value(value: &Value) -> Observation {
    match value {
        Value::Int(n) => Observation::Int(*n),
        Value::Bool(b) => Observation::Bool(*b),
        Value::Str(s) => Observation::Str(s.to_string()),
        Value::Void => Observation::Void,
        Value::Tuple(items) => Observation::Tuple(items.iter().map(observe_value).collect()),
        Value::Variant(v) => Observation::Variant(
            v.ty_name.as_str().to_string(),
            v.tag,
            Box::new(observe_value(&v.payload)),
        ),
        Value::Closure(_) => Observation::opaque("procedure"),
        Value::Prim(_) => Observation::opaque("procedure"),
        Value::Data(_) => Observation::opaque("procedure"),
        Value::Hash(_) => Observation::opaque("hash"),
        Value::Unit(u) => {
            Observation::Opaque { shape: "unit", exports: export_names(u.exports()) }
        }
    }
}

/// Projects a value expression (substitution reducer) onto its
/// observation.
///
/// # Panics
///
/// Panics when given a non-value expression — callers observe only the
/// results of complete reductions.
pub fn observe_expr(expr: &Expr) -> Observation {
    assert!(expr.is_value(), "observe_expr requires a value, got a non-value");
    match expr {
        Expr::Lit(Lit::Int(n)) => Observation::Int(*n),
        Expr::Lit(Lit::Bool(b)) => Observation::Bool(*b),
        Expr::Lit(Lit::Str(s)) => Observation::Str(s.to_string()),
        Expr::Lit(Lit::Void) => Observation::Void,
        Expr::Tuple(items) => Observation::Tuple(items.iter().map(observe_expr).collect()),
        Expr::Variant(v) => Observation::Variant(
            v.ty_name.as_str().to_string(),
            v.tag,
            Box::new(observe_expr(&v.payload)),
        ),
        Expr::Lambda(_) | Expr::Prim(..) | Expr::Data(_) => Observation::opaque("procedure"),
        Expr::Loc(_) => Observation::opaque("hash"),
        Expr::Unit(u) => {
            Observation::Opaque { shape: "unit", exports: export_names(&u.exports) }
        }
        _ => unreachable!("is_value covers all value forms"),
    }
}

/// Divergence diagnosis: replay a program on both semantics with event
/// capture on and pinpoint the first primitive call where they disagree.
#[cfg(feature = "trace")]
mod divergence {
    use std::fmt;

    use units_trace::Event;

    use crate::outcome::Backend;

    /// Where (and whether) the two backends' primitive-call streams
    /// diverge, as reported by [`diagnose_divergence`].
    #[derive(Debug, Clone)]
    pub struct DivergenceReport {
        /// The compiled backend's outcome, rendered.
        pub compiled_outcome: String,
        /// The reducer's outcome, rendered.
        pub reduced_outcome: String,
        /// Total primitive calls each backend made.
        pub prim_calls: (usize, usize),
        /// Index of the first differing primitive call, if any.
        pub diverging_call: Option<usize>,
        /// The Fig. 11 step during which the diverging primitive fired
        /// (1-based, from the reducer's event stream).
        pub diverging_step: Option<u64>,
        /// The compiled backend's rendering of the diverging call.
        pub compiled_call: Option<String>,
        /// The reducer's rendering of the diverging call.
        pub reduced_call: Option<String>,
    }

    impl fmt::Display for DivergenceReport {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            writeln!(f, "divergence report:")?;
            writeln!(f, "  compiled outcome: {}", self.compiled_outcome)?;
            writeln!(f, "  reduced  outcome: {}", self.reduced_outcome)?;
            match self.diverging_call {
                Some(i) => {
                    write!(f, "  first diverging prim call: #{}", i + 1)?;
                    if let Some(step) = self.diverging_step {
                        write!(f, " (during Fig. 11 step {step})")?;
                    }
                    writeln!(f)?;
                    writeln!(
                        f,
                        "    compiled: {}",
                        self.compiled_call.as_deref().unwrap_or("⟨stream ended⟩")
                    )?;
                    write!(
                        f,
                        "    reduced:  {}",
                        self.reduced_call.as_deref().unwrap_or("⟨stream ended⟩")
                    )
                }
                None => write!(
                    f,
                    "  prim call streams agree ({} calls each); \
                     divergence is outside the primitives",
                    self.prim_calls.0
                ),
            }
        }
    }

    fn render_outcome(result: &Result<crate::Outcome, crate::Error>) -> String {
        match result {
            Ok(o) => format!("{} (output: {:?})", o.value, o.output),
            Err(e) => format!("error: {e}"),
        }
    }

    /// Payloads of the `"prim"` events, in order. Both backends emit them
    /// through [`units_runtime::render_prim_call`], so the strings are
    /// directly comparable.
    fn prim_payloads(events: &[Event]) -> Vec<&str> {
        events
            .iter()
            .filter(|e| e.kind == "prim")
            .map(|e| e.payload.as_str())
            .collect()
    }

    /// The 1-based Fig. 11 step during which the `idx`-th prim call (0-based)
    /// fired. Prim events are emitted while a step is being contracted,
    /// *before* that step's own `step/…` event, so the enclosing step is
    /// one past the number of step events already seen.
    fn step_of_prim(events: &[Event], idx: usize) -> Option<u64> {
        let mut prims = 0usize;
        let mut steps = 0u64;
        for e in events {
            if e.kind.starts_with("step/") {
                steps += 1;
            } else if e.kind == "prim" {
                if prims == idx {
                    return Some(steps + 1);
                }
                prims += 1;
            }
        }
        // The stream ended early: the missing call would have been in the
        // step after the last one recorded.
        Some(steps + 1)
    }

    /// Runs a program on both semantics — production (`against`, the
    /// compiled tree-walker or the bytecode VM) vs the Fig. 11
    /// reference reducer — with event capture on and reports where
    /// their primitive-call streams first disagree. `run` is whatever
    /// executes the program on a given backend — typically
    /// [`Loaded::run_on`] closed over a loaded artifact.
    ///
    /// The streams are comparable because the backends render every
    /// primitive application with the same
    /// [`units_runtime::render_prim_call`] ground formatter. When the
    /// streams agree but the outcomes differ, the divergence is outside
    /// the primitives (e.g. in a final higher-order value) and the report
    /// says so.
    ///
    /// [`Loaded::run_on`]: crate::Loaded::run_on
    pub fn diagnose_divergence_with<F>(against: Backend, run: F) -> DivergenceReport
    where
        F: Fn(Backend) -> Result<crate::Outcome, crate::Error>,
    {
        diagnose_divergence_between(against, Backend::Reducer, run)
    }

    /// [`diagnose_divergence_with`] generalized to any backend pair:
    /// `left` plays the "compiled" role of the report, `right` the
    /// "reduced" role (the field names keep their historical spelling —
    /// read them as left/right). Pass `right = Backend::Reducer` to get
    /// exactly [`diagnose_divergence_with`]; pass
    /// `(Compiled, Bytecode)` to compare the two production backends
    /// against each other. The Fig. 11 step attribution comes from the
    /// right-hand stream, so it names reducer steps only when the right
    /// backend is the reducer — for other pairs `diverging_step` is the
    /// step count of whatever `step/…` events the right backend emitted
    /// (none for the compiled backends, making it step 1).
    pub fn diagnose_divergence_between<F>(
        left: Backend,
        right: Backend,
        run: F,
    ) -> DivergenceReport
    where
        F: Fn(Backend) -> Result<crate::Outcome, crate::Error>,
    {
        let (compiled, compiled_events) = units_trace::capture(|| run(left));
        let (reduced, reduced_events) = units_trace::capture(|| run(right));
        let cp = prim_payloads(&compiled_events);
        let rp = prim_payloads(&reduced_events);
        let diverging_call = cp
            .iter()
            .zip(rp.iter())
            .position(|(a, b)| a != b)
            .or_else(|| (cp.len() != rp.len()).then(|| cp.len().min(rp.len())));
        DivergenceReport {
            compiled_outcome: render_outcome(&compiled),
            reduced_outcome: render_outcome(&reduced),
            prim_calls: (cp.len(), rp.len()),
            diverging_call,
            diverging_step: diverging_call
                .and_then(|i| step_of_prim(&reduced_events, i)),
            compiled_call: diverging_call.and_then(|i| cp.get(i).map(|s| s.to_string())),
            reduced_call: diverging_call.and_then(|i| rp.get(i).map(|s| s.to_string())),
        }
    }

    /// [`diagnose_divergence_with`] over a loaded artifact: compares
    /// the compiled tree-walker against the Fig. 11 reference reducer
    /// under the handle's session limits and recovery policy.
    ///
    /// [`Loaded`]: crate::Loaded
    pub fn diagnose_divergence(loaded: &crate::Loaded) -> DivergenceReport {
        diagnose_divergence_with(Backend::Compiled, |backend| loaded.run_on(backend))
    }
}

#[cfg(feature = "trace")]
pub use divergence::{
    diagnose_divergence, diagnose_divergence_between, diagnose_divergence_with, DivergenceReport,
};

#[cfg(test)]
mod tests {
    use super::*;
    use std::rc::Rc;

    #[test]
    fn both_projections_agree_on_ground_values() {
        assert_eq!(observe_value(&Value::Int(3)), observe_expr(&Expr::int(3)));
        assert_eq!(observe_value(&Value::str("x")), observe_expr(&Expr::str("x")));
        assert_eq!(observe_value(&Value::Void), observe_expr(&Expr::void()));
        assert_eq!(
            observe_value(&Value::Tuple(Rc::new(vec![Value::Bool(true)]))),
            observe_expr(&Expr::Tuple(vec![Expr::bool(true)]))
        );
    }

    #[test]
    fn higher_order_results_are_opaque_by_shape() {
        let lam = Expr::lambda(vec![], Expr::void());
        assert_eq!(observe_expr(&lam), Observation::opaque("procedure"));
    }

    #[test]
    fn opaque_equality_ignores_export_detail() {
        let a = Observation::Opaque { shape: "unit", exports: vec!["x".into()] };
        let b = Observation::Opaque { shape: "unit", exports: vec!["y".into(), "z".into()] };
        assert_eq!(a, b);
        assert_ne!(a, Observation::opaque("procedure"));
        assert_eq!(a.to_string(), "#⟨unit exports: x⟩");
        assert_eq!(Observation::opaque("hash").to_string(), "#⟨hash⟩");
    }

    #[test]
    #[should_panic(expected = "requires a value")]
    fn non_values_panic() {
        let _ = observe_expr(&Expr::var("x"));
    }

    #[test]
    fn display_is_readable() {
        let o = Observation::Tuple(vec![
            Observation::Int(1),
            Observation::Variant("db".into(), 0, Box::new(Observation::Void)),
        ]);
        assert_eq!(o.to_string(), "⟨1, (db·0 void)⟩");
    }
}
