//! The original end-to-end pipeline: parse → check → evaluate.
//!
//! [`Program`] was the high-level entry point a downstream user reached
//! for: it owns the parsed expression, knows which calculus it is checked
//! against, and can run on either backend — the production cells
//! evaluator (§4.1.6) or the reference substitution reducer (Fig. 11).
//!
//! It is superseded by [`Engine`](crate::Engine), which adds artifact
//! caching, parallel checking, and resource budgets behind the same
//! parse → check → run shape; `Program` remains as a thin deprecated
//! shim so existing code keeps compiling.

#![allow(deprecated)]

use units_check::{check_program, CheckOptions, Level, Strictness};
use units_compile::{evaluate_program, lower_program, resolve_program};
use units_kernel::{Expr, Ty};
use units_reduce::Reducer;
use units_runtime::{execute, Machine};
use units_syntax::{parse_file, pretty_expr};

use crate::error::Error;
use crate::observe::{observe_expr, observe_value, Observation};

/// Which evaluator runs a program.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// The cells-based production evaluator (§4.1.6).
    #[default]
    Compiled,
    /// The substitution-based reference reducer (Fig. 11).
    Reducer,
    /// The flat-bytecode dispatch-loop VM: the resolved form lowered to
    /// a stack ISA over interned symbols (see `units_compile::lower` and
    /// `units_runtime::vm`).
    Bytecode,
}

/// The result of running a program: what it computed and what it printed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Outcome {
    /// The observable part of the final value.
    pub value: Observation,
    /// Everything `display` wrote, in order.
    pub output: Vec<String>,
}

/// A parsed, checkable, runnable program.
///
/// # Examples
///
/// ```
/// use units::{Level, Observation, Program};
///
/// let outcome = Program::parse(
///     "(define hello (unit (import) (export) (init (* 6 7))))
///      (invoke hello)",
/// )?
/// .at_level(Level::Untyped)
/// .run()?;
/// assert_eq!(outcome.value, Observation::Int(42));
/// # Ok::<(), units::Error>(())
/// ```
#[derive(Debug, Clone)]
#[deprecated(
    since = "0.2.0",
    note = "use `units::Engine`: `Engine::builder().level(..).limits(..).build().load(src)?.run()`"
)]
pub struct Program {
    expr: Expr,
    level: Level,
    strictness: Strictness,
    fuel: Option<u64>,
    checked_ty: Option<Ty>,
    resolve: bool,
    /// Lazily computed slot-resolved form of `expr`; resolution is a
    /// compile step, paid once per program rather than once per run.
    resolved: std::cell::OnceCell<Expr>,
    /// Fault injection (tests only): make the reducer's δ-rules
    /// mis-compute integers after this many steps, so the divergence
    /// report has something real to find.
    #[cfg(feature = "trace")]
    diverge_after: Option<u64>,
}

impl Program {
    /// Parses a program: top-level definitions followed by expressions
    /// (see [`units_syntax::parse_file`]). Defaults to [`Level::Untyped`]
    /// with the paper's valuability restriction and no fuel limit.
    ///
    /// # Errors
    ///
    /// Returns [`Error::Parse`] on malformed source.
    pub fn parse(source: &str) -> Result<Program, Error> {
        Ok(Program {
            expr: parse_file(source)?,
            level: Level::Untyped,
            strictness: Strictness::Paper,
            fuel: None,
            checked_ty: None,
            resolve: true,
            resolved: std::cell::OnceCell::new(),
            #[cfg(feature = "trace")]
            diverge_after: None,
        })
    }

    /// Wraps an already-built expression.
    pub fn from_expr(expr: Expr) -> Program {
        Program {
            expr,
            level: Level::Untyped,
            strictness: Strictness::Paper,
            fuel: None,
            checked_ty: None,
            resolve: true,
            resolved: std::cell::OnceCell::new(),
            #[cfg(feature = "trace")]
            diverge_after: None,
        }
    }

    /// Selects the calculus to check against.
    pub fn at_level(mut self, level: Level) -> Program {
        self.level = level;
        self.checked_ty = None;
        self
    }

    /// Selects paper-strict or MzScheme-strict definition checking.
    pub fn with_strictness(mut self, strictness: Strictness) -> Program {
        self.strictness = strictness;
        self
    }

    /// Bounds evaluation to `fuel` steps.
    pub fn with_fuel(mut self, fuel: u64) -> Program {
        self.fuel = Some(fuel);
        self
    }

    /// Enables or disables the production backend's lexical-address
    /// resolution prepass (`units_compile::resolve_program`). On by
    /// default; turning it off forces every variable through the by-name
    /// environment scan — the baseline the resolver is benchmarked
    /// against, and a way to exercise the fallback path in tests.
    pub fn with_resolution(mut self, on: bool) -> Program {
        self.resolve = on;
        self
    }

    /// Deliberately breaks the reference reducer after `steps`
    /// reductions (integer δ-results come back off by one), so tests can
    /// force the backends apart and exercise the divergence report. See
    /// [`units_reduce::Reducer::inject_divergence_after`].
    #[cfg(feature = "trace")]
    pub fn with_injected_divergence(mut self, steps: u64) -> Program {
        self.diverge_after = Some(steps);
        self
    }

    /// The underlying expression.
    pub fn expr(&self) -> &Expr {
        &self.expr
    }

    /// The program pretty-printed back to surface syntax.
    pub fn to_source(&self) -> String {
        pretty_expr(&self.expr)
    }

    /// Runs the checks for the selected level. For typed levels the
    /// program's type is returned (and cached).
    ///
    /// # Errors
    ///
    /// Returns [`Error::Check`] with every context violation, or the
    /// first type error.
    pub fn check(&mut self) -> Result<Option<Ty>, Error> {
        let opts = CheckOptions { level: self.level, strictness: self.strictness };
        let ty = check_program(&self.expr, opts)?;
        self.checked_ty = ty.clone();
        Ok(ty)
    }

    /// Checks, then runs on the chosen backend.
    ///
    /// # Errors
    ///
    /// Check errors first, then any runtime error.
    pub fn run_on(&self, backend: Backend) -> Result<Outcome, Error> {
        let mut me = self.clone();
        me.check()?;
        me.run_unchecked(backend)
    }

    /// Checks, then runs on the production backend.
    ///
    /// # Errors
    ///
    /// As for [`Program::run_on`].
    pub fn run(&self) -> Result<Outcome, Error> {
        self.run_on(Backend::Compiled)
    }

    /// Runs without re-checking (for benchmarks and for callers that
    /// checked already).
    ///
    /// # Errors
    ///
    /// Any runtime error the program signals.
    pub fn run_unchecked(&self, backend: Backend) -> Result<Outcome, Error> {
        match backend {
            Backend::Compiled => {
                let _timer = units_trace::time("eval");
                let mut machine = match self.fuel {
                    Some(f) => Machine::with_fuel(f),
                    None => Machine::new(),
                };
                let expr = if self.resolve {
                    self.resolved.get_or_init(|| resolve_program(&self.expr))
                } else {
                    &self.expr
                };
                let value = evaluate_program(expr, &mut machine)?;
                Ok(Outcome { value: observe_value(&value), output: machine.take_output() })
            }
            Backend::Bytecode => {
                let expr = if self.resolve {
                    self.resolved.get_or_init(|| resolve_program(&self.expr))
                } else {
                    &self.expr
                };
                let chunk = lower_program(expr);
                let _timer = units_trace::time("eval");
                let mut machine = match self.fuel {
                    Some(f) => Machine::with_fuel(f),
                    None => Machine::new(),
                };
                let value = execute(&chunk, &mut machine)?;
                Ok(Outcome { value: observe_value(&value), output: machine.take_output() })
            }
            Backend::Reducer => {
                let mut reducer = match self.fuel {
                    Some(f) => Reducer::with_fuel(f),
                    None => Reducer::new(),
                };
                #[cfg(feature = "trace")]
                if let Some(after) = self.diverge_after {
                    reducer.inject_divergence_after(after);
                }
                let value = reducer.reduce_to_value(&self.expr)?;
                Ok(Outcome {
                    value: observe_expr(&value),
                    output: reducer.machine.take_output(),
                })
            }
        }
    }

    /// Runs on *all three* backends and asserts they agree — the
    /// executable form of the paper's implementation-correctness claim.
    /// Returns the common outcome.
    ///
    /// # Errors
    ///
    /// Check or runtime errors; a [`units_runtime::RuntimeError`] from
    /// any backend is reported as that backend's error. Disagreement
    /// between the backends is a panic (it is a bug in this repository,
    /// not in the program).
    ///
    /// # Panics
    ///
    /// Panics when any two backends disagree.
    pub fn run_differential(&self) -> Result<Outcome, Error> {
        let compiled = self.run_on(Backend::Compiled);
        let bytecode = self.run_on(Backend::Bytecode);
        match (&compiled, &bytecode) {
            (Ok(a), Ok(b)) if a != b => panic!(
                "backends disagree: compiled={a:?} vs bytecode={b:?}\nprogram: {}",
                self.to_source()
            ),
            (Ok(a), Err(b)) => {
                panic!("compiled succeeded ({a:?}) but bytecode failed ({b})")
            }
            (Err(a), Ok(b)) => {
                panic!("bytecode succeeded ({b:?}) but compiled failed ({a})")
            }
            _ => {}
        }
        let reduced = self.run_on(Backend::Reducer);
        match (compiled, reduced) {
            (Ok(a), Ok(b)) => {
                if a != b {
                    #[cfg(feature = "trace")]
                    panic!(
                        "backends disagree: compiled={a:?} vs reduced={b:?}\n{}\nprogram: {}",
                        crate::observe::diagnose_divergence(self),
                        self.to_source()
                    );
                    #[cfg(not(feature = "trace"))]
                    panic!(
                        "backends disagree: compiled={a:?} vs reduced={b:?}\nprogram: {}",
                        self.to_source()
                    );
                }
                Ok(a)
            }
            (Err(a), Err(_b)) => Err(a),
            (Ok(a), Err(b)) => {
                panic!("compiled succeeded ({a:?}) but reducer failed ({b})")
            }
            (Err(a), Ok(b)) => {
                panic!("reducer succeeded ({b:?}) but compiled failed ({a})")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_check_run_round_trip() {
        let outcome = Program::parse("(invoke (unit (import) (export) (init (+ 1 2))))")
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(outcome.value, Observation::Int(3));
        assert!(outcome.output.is_empty());
    }

    #[test]
    fn check_errors_surface_before_running() {
        let err = Program::parse("(+ nope 1)").unwrap().run().unwrap_err();
        assert!(err.as_check().is_some());
    }

    #[test]
    fn typed_checking_returns_a_type() {
        let mut p = Program::parse("(invoke (unit (import) (export) (init 5)))")
            .unwrap()
            .at_level(Level::Constructed);
        assert_eq!(p.check().unwrap(), Some(Ty::Int));
    }

    #[test]
    fn both_backends_agree_on_the_phonebook_smoke_test() {
        let outcome = Program::parse(
            "(define u (unit (import) (export)
                (define square (lambda (n) (* n n)))
                (init (display \"up\") (square 12))))
             (invoke u)",
        )
        .unwrap()
        .run_differential()
        .unwrap();
        assert_eq!(outcome.value, Observation::Int(144));
        assert_eq!(outcome.output, vec!["up".to_string()]);
    }

    #[test]
    fn fuel_limits_apply_to_all_backends() {
        let p = Program::parse(
            "(letrec ((define loop (lambda () (loop)))) (loop))",
        )
        .unwrap()
        .with_strictness(Strictness::MzScheme)
        .with_fuel(5_000);
        for backend in [Backend::Compiled, Backend::Reducer, Backend::Bytecode] {
            let err = p.run_on(backend).unwrap_err();
            assert_eq!(
                err.as_resource_exhausted(),
                Some((units_runtime::Resource::Fuel, 5_000)),
                "{backend:?}: {err}"
            );
        }
    }

    #[test]
    fn to_source_round_trips() {
        let p = Program::parse("(invoke (unit (import) (export) (init 1)))").unwrap();
        let reparsed = Program::parse(&p.to_source()).unwrap();
        assert_eq!(p.expr(), reparsed.expr());
    }
}
