//! The paper's running examples (§3, Figs. 1–7) as reusable sources.
//!
//! The interactive phone book is built exactly as the paper draws it:
//!
//! * [`database_unit`] — Fig. 1's atomic `Database` unit (datatype `db`,
//!   string-keyed table, imported `error` handler);
//! * [`number_info_unit`] — the `NumberInfo` unit implementing the info
//!   values;
//! * [`phonebook_compound`] — Fig. 2's `PhoneBook`: links the two,
//!   passes `error` through, hides `delete`, re-exports the rest;
//! * [`gui_unit`] / [`expert_gui_unit`] / [`novice_gui_unit`] — Fig. 3/6
//!   GUIs, simulated as text UIs writing to the output buffer (the
//!   substitution for DrScheme's graphical toolbox, see DESIGN.md §6);
//! * [`main_unit`], [`ipb_program`] — Fig. 3's complete `IPB` program
//!   with its cyclic PhoneBook ⇄ Gui links;
//! * [`make_ipb_program`] — Figs. 5/6: `MakeIPB` as a core-language
//!   function over a first-class GUI unit, selected at run time;
//! * [`plugin_program`] / [`sample_loader_plugin`] — Fig. 7: dynamic
//!   linking of loader plug-ins via `invoke … (val …)`.
//!
//! All sources are UNITd (dynamically typed) programs; the typed variants
//! used by the UNITc/UNITe test suites live in `tests/figures.rs`.

/// Fig. 1: the atomic `Database` unit.
///
/// Exports `new`, `insert`, `delete`, `lookup`, `has`; imports the
/// `error` handler. Entries are keyed by strings; the table is created by
/// the initialization expression, mirroring the figure's
/// `strTable := makeStringHashTable()`.
pub fn database_unit() -> String {
    r#"(unit (import error)
          (export new insert delete lookup has)
      (datatype db (mkdb undb void) db?)
      (define new (lambda () (mkdb (hash-new))))
      (define insert (lambda (d key v)
        (if (hash-has? (undb d) key)
            (error (string-append "duplicate key: " key))
            (hash-set! (undb d) key v))))
      (define delete (lambda (d key) (hash-remove! (undb d) key)))
      (define lookup (lambda (d key)
        (if (hash-has? (undb d) key)
            (hash-get (undb d) key)
            (error (string-append "no entry: " key)))))
      (define has (lambda (d key) (hash-has? (undb d) key)))
      (init (display "database ready")))"#
        .to_string()
}

/// The `NumberInfo` unit: implements the info values stored in the
/// database (phone numbers).
pub fn number_info_unit() -> String {
    r#"(unit (import)
          (export numInfo infoToString)
      (datatype info (mkinfo uninfo void) info?)
      (define numInfo (lambda (n) (mkinfo n)))
      (define infoToString (lambda (i) (int->string (uninfo i)))))"#
        .to_string()
}

/// Fig. 2: the `PhoneBook` compound — `Database` linked with
/// `NumberInfo`, with `error` passed through from the outside and
/// `delete` hidden.
pub fn phonebook_compound() -> String {
    format!(
        "(compound (import error)
                   (export new insert lookup has numInfo infoToString)
           (link ({database}
                  (with error)
                  (provides new insert delete lookup has))
                 ({number_info}
                  (with)
                  (provides numInfo infoToString))))",
        database = database_unit(),
        number_info = number_info_unit(),
    )
}

/// A GUI unit with the Fig. 3 interface: imports the phone book
/// operations, exports `openBook` and `error`. `banner` customizes the
/// displayed text (used for the expert/novice variants of Fig. 6).
fn gui_unit_with_banner(banner: &str) -> String {
    format!(
        r#"(unit (import new insert lookup has numInfo infoToString)
          (export openBook error)
      (define error (lambda (msg) (display (string-append "ERROR: " msg))))
      (define openBook (lambda (pb)
        (insert pb "pat" (numInfo 5551234))
        (insert pb "chris" (numInfo 5559876))
        (display (string-append "pat -> " (infoToString (lookup pb "pat"))))
        (display (string-append "chris -> " (infoToString (lookup pb "chris"))))
        (has pb "pat")))
      (init (display "{banner}")))"#
    )
}

/// Fig. 3: the standard GUI unit (a simulated text UI).
pub fn gui_unit() -> String {
    gui_unit_with_banner("gui ready")
}

/// Fig. 6: the expert GUI variant.
pub fn expert_gui_unit() -> String {
    gui_unit_with_banner("expert gui ready")
}

/// Fig. 6: the novice GUI variant.
pub fn novice_gui_unit() -> String {
    gui_unit_with_banner("novice gui ready (hints on)")
}

/// Fig. 3: the `Main` unit — creates a database and opens the book. Its
/// initialization value (a boolean) is the program's result.
pub fn main_unit() -> String {
    "(unit (import new openBook) (export)
       (init (openBook (new))))"
        .to_string()
}

/// Fig. 3: the complete interactive phone book `IPB` — `PhoneBook`,
/// `Gui`, and `Main` linked together, with links flowing both from
/// PhoneBook to Gui and from Gui back to PhoneBook (`error`).
pub fn ipb_compound() -> String {
    format!(
        "(compound (import) (export)
           (link ({phonebook}
                  (with error)
                  (provides new insert lookup has numInfo infoToString))
                 ({gui}
                  (with new insert lookup has numInfo infoToString)
                  (provides openBook error))
                 ({main}
                  (with new openBook)
                  (provides))))",
        phonebook = phonebook_compound(),
        gui = gui_unit(),
        main = main_unit(),
    )
}

/// Fig. 3, invoked: the whole program.
pub fn ipb_program() -> String {
    format!("(invoke {})", ipb_compound())
}

/// Figs. 5/6: `MakeIPB` as a core function over a first-class GUI unit,
/// plus the `Starter` logic that picks a GUI at run time and invokes the
/// linked result.
pub fn make_ipb_program(expert_mode: bool) -> String {
    format!(
        "(define expert-mode {mode})
         (define expert-gui {expert})
         (define novice-gui {novice})
         (define make-ipb (lambda (a-gui)
           (compound (import) (export)
             (link ({phonebook}
                    (with error)
                    (provides new insert lookup has numInfo infoToString))
                   (a-gui
                    (with new insert lookup has numInfo infoToString)
                    (provides openBook error))
                   ({main}
                    (with new openBook)
                    (provides))))))
         (invoke (make-ipb (if expert-mode expert-gui novice-gui)))",
        mode = expert_mode,
        expert = expert_gui_unit(),
        novice = novice_gui_unit(),
        phonebook = phonebook_compound(),
        main = main_unit(),
    )
}

/// Fig. 7: a loader plug-in — a unit whose initialization expression
/// evaluates to a `db → void` function, importing the database operations
/// it needs from the host.
pub fn sample_loader_plugin() -> String {
    r#"(unit (import insert numInfo error) (export)
      (init (lambda (pb)
        (insert pb "imported-carol" (numInfo 5550000))
        (display "loader ran"))))"#
        .to_string()
}

/// Fig. 7: the phone book with a plug-in-capable GUI. The `plugin` source
/// is linked *dynamically*: the GUI's `add-loader` invokes it at run
/// time, satisfying its imports from the host's own imports and
/// definitions.
pub fn plugin_program(plugin: &str) -> String {
    format!(
        r#"(define plugin {plugin})
         (invoke (compound (import) (export)
           (link ({phonebook}
                  (with error)
                  (provides new insert lookup has numInfo infoToString))
                 ((unit (import new insert lookup has numInfo infoToString)
                        (export openBook error add-loader)
                    (define error (lambda (msg) (display (string-append "ERROR: " msg))))
                    (define add-loader (lambda (pb ext)
                      (let ((loader (invoke ext (val insert insert)
                                                (val numInfo numInfo)
                                                (val error error))))
                        (loader pb))))
                    (define openBook (lambda (pb)
                      (display (string-append "carol -> "
                        (infoToString (lookup pb "imported-carol")))))))
                  (with new insert lookup has numInfo infoToString)
                  (provides openBook error add-loader))
                 ((unit (import new openBook add-loader) (export)
                    (init (let ((pb (new)))
                      (add-loader pb plugin)
                      (openBook pb))))
                  (with new openBook add-loader)
                  (provides)))))"#,
        plugin = plugin,
        phonebook = phonebook_compound(),
    )
}

/// §5.3's diamond: a `Symbol` unit linked *once* and shared by both a
/// lexer and a parser, so the `sym` values they exchange belong to one
/// instance — "the diamond import problem is solved by linking lexer,
/// parser, and symbol together at once".
pub fn compiler_pipeline() -> String {
    r#"(invoke (compound (import) (export)
      (link ((unit (import) (export intern symToString)
               (datatype sym (mksym unsym str) sym?)
               (define table void)
               (define intern (lambda (name)
                 (if (hash-has? table name)
                     (hash-get table name)
                     (begin
                       (hash-set! table name (mksym name))
                       (hash-get table name)))))
               (define symToString (lambda (s) (unsym s)))
               (init (set! table (hash-new)) (display "symbol table up")))
             (with) (provides intern symToString))
            ((unit (import intern) (export lex)
               (define lex (lambda (sourceText) (intern sourceText))))
             (with intern) (provides lex))
            ((unit (import intern symToString) (export parse)
               (define parse (lambda (tok)
                 (string-append "ast:" (symToString tok)))))
             (with intern symToString) (provides parse))
            ((unit (import lex parse intern) (export)
               (init
                 (display (parse (lex "lambda")))
                 ;; interning is idempotent: same instance, same cell
                 (tuple (parse (lex "x")) (parse (lex "x")))))
             (with lex parse intern) (provides)))))"#
        .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::observe::Observation;

    #[test]
    fn fig3_ipb_runs_and_reports_both_entries() {
        let outcome =
            Engine::new().load(&ipb_program()).unwrap().run_differential().unwrap();
        assert_eq!(outcome.value, Observation::Bool(true));
        assert_eq!(
            outcome.output,
            vec![
                "database ready",
                "gui ready",
                "pat -> 5551234",
                "chris -> 5559876",
            ]
        );
    }

    #[test]
    fn fig2_phonebook_hides_delete() {
        // Linking a client against `delete` must fail: PhoneBook hides it.
        let bad = format!(
            "(invoke (compound (import) (export)
               (link ({phonebook}
                      (with error)
                      (provides new delete))
                     ((unit (import new delete) (export error)
                        (define error (lambda (m) void)))
                      (with new delete) (provides error)))))",
            phonebook = phonebook_compound()
        );
        // `delete` is not among PhoneBook's exports: the context check
        // rejects the provides clause outright? No — provides is checked
        // at run time (Fig. 11 side condition): MissingProvide.
        let err = Engine::new().invoke(&bad).unwrap_err();
        match err.as_runtime() {
            Some(units_runtime::RuntimeError::MissingProvide { name }) => {
                assert_eq!(name.as_str(), "delete");
            }
            other => panic!("expected MissingProvide, got {other:?} / {err}"),
        }
    }

    #[test]
    fn fig6_starter_picks_a_gui_at_runtime() {
        let engine = Engine::new();
        let expert = engine.invoke(&make_ipb_program(true)).unwrap();
        assert!(expert.output.iter().any(|l| l.contains("expert gui ready")));
        let novice = engine.invoke(&make_ipb_program(false)).unwrap();
        assert!(novice.output.iter().any(|l| l.contains("novice gui ready")));
        assert_eq!(expert.value, Observation::Bool(true));
        assert_eq!(novice.value, expert.value);
    }

    #[test]
    fn fig7_plugin_is_dynamically_linked_and_runs() {
        let outcome = Engine::new()
            .load(&plugin_program(&sample_loader_plugin()))
            .unwrap()
            .run_differential()
            .unwrap();
        assert!(outcome.output.iter().any(|l| l == "loader ran"));
        assert!(outcome.output.iter().any(|l| l.contains("carol -> 5550000")));
    }

    #[test]
    fn sec53_diamond_shares_one_symbol_instance() {
        let outcome =
            Engine::new().load(&compiler_pipeline()).unwrap().run_differential().unwrap();
        assert_eq!(
            outcome.value,
            Observation::Tuple(vec![
                Observation::Str("ast:x".into()),
                Observation::Str("ast:x".into()),
            ])
        );
        assert_eq!(outcome.output, vec!["symbol table up", "ast:lambda"]);
    }

    #[test]
    fn database_rejects_duplicate_keys_via_imported_error_handler() {
        let src = format!(
            r#"(invoke (compound (import) (export)
               (link ({database}
                      (with error)
                      (provides new insert delete lookup has))
                     ((unit (import new insert) (export error)
                        (define error (lambda (m) (display m) void))
                        (init (let ((d (new)))
                          (insert d "k" 1)
                          (insert d "k" 2))))
                      (with new insert) (provides error)))))"#,
            database = database_unit()
        );
        let outcome = Engine::new().load(&src).unwrap().run_differential().unwrap();
        assert!(outcome.output.iter().any(|l| l.contains("duplicate key: k")));
    }
}
