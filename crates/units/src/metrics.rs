//! The engine's always-on metrics plane.
//!
//! Unlike the event hooks in `units-trace` (feature-gated to no-ops),
//! these are plain per-engine counters — a handful of relaxed atomic
//! bumps and one `Instant` read per invoke — cheap enough to keep in
//! every build, so `Engine::metrics_snapshot` reports cache behaviour,
//! recoveries, worker-pool usage, fuel, store-cell high-water marks, and
//! invoke latency percentiles whether or not the `trace` feature is
//! compiled.
//!
//! Engines are `Send + Sync` session handles shared across threads, so
//! the counters are `AtomicU64` (relaxed ordering: they are statistics,
//! not synchronization) and the latency histogram sits behind a `Mutex`
//! taken once per run.
//!
//! Latency uses [`units_trace::DurationStats`] (the *types* in
//! `units-trace` always compile): log₂-ns histogram buckets with
//! derived p50/p99.

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::Mutex;
use std::time::Duration;

use units_trace::DurationStats;

/// Internal mutable storage, one per [`crate::Engine`]. Worker threads
/// and concurrent invokers bump these directly — no joining required.
#[derive(Debug, Default)]
pub(crate) struct EngineMetrics {
    pub source_hits: AtomicU64,
    pub term_hits: AtomicU64,
    pub misses: AtomicU64,
    pub evictions: AtomicU64,
    pub parses: AtomicU64,
    pub pool_batches: AtomicU64,
    pub pool_jobs: AtomicU64,
    pub pool_peak_workers: AtomicU64,
    pub runs: AtomicU64,
    pub run_failures: AtomicU64,
    pub fuel_total: AtomicU64,
    pub fuel_max: AtomicU64,
    pub cells_peak: AtomicU64,
    pub fuel_retries: AtomicU64,
    pub fallbacks: AtomicU64,
    pub recovered_runs: AtomicU64,
    pub flight_dumps: AtomicU64,
    pub flight_dump_failures: AtomicU64,
    pub store_hits: AtomicU64,
    pub store_misses: AtomicU64,
    pub store_corrupt: AtomicU64,
    pub store_writes: AtomicU64,
    pub invoke_latency: Mutex<DurationStats>,
}

/// One relaxed increment — the idiom for every counter here.
#[inline]
pub(crate) fn bump(counter: &AtomicU64) {
    counter.fetch_add(1, Relaxed);
}

impl EngineMetrics {
    /// Records one completed run (including any recovery work).
    pub fn note_run(&self, latency: Duration, ok: bool) {
        bump(&self.runs);
        if !ok {
            bump(&self.run_failures);
        }
        let ns = u64::try_from(latency.as_nanos()).unwrap_or(u64::MAX);
        self.invoke_latency.lock().unwrap().record_ns(ns);
    }

    /// Folds one machine's end-of-run resource usage in.
    pub fn note_machine(&self, fuel: u64, cells: u64) {
        self.fuel_total.fetch_add(fuel, Relaxed);
        self.fuel_max.fetch_max(fuel, Relaxed);
        self.cells_peak.fetch_max(cells, Relaxed);
    }

    /// Records one worker-pool batch of `jobs` jobs on `workers`
    /// threads.
    pub fn note_batch(&self, jobs: u64, workers: u64) {
        bump(&self.pool_batches);
        self.pool_jobs.fetch_add(jobs, Relaxed);
        self.pool_peak_workers.fetch_max(workers, Relaxed);
    }

    /// A structured copy of everything, with `entries` supplied by the
    /// cache (it owns the map).
    pub fn snapshot(&self, entries: usize) -> MetricsSnapshot {
        let lat = self.invoke_latency.lock().unwrap();
        MetricsSnapshot {
            cache: CacheMetrics {
                source_hits: self.source_hits.load(Relaxed),
                term_hits: self.term_hits.load(Relaxed),
                misses: self.misses.load(Relaxed),
                evictions: self.evictions.load(Relaxed),
                parses: self.parses.load(Relaxed),
                entries,
            },
            pool: PoolMetrics {
                batches: self.pool_batches.load(Relaxed),
                jobs: self.pool_jobs.load(Relaxed),
                peak_workers: self.pool_peak_workers.load(Relaxed),
            },
            recovery: RecoveryMetrics {
                fuel_retries: self.fuel_retries.load(Relaxed),
                reference_fallbacks: self.fallbacks.load(Relaxed),
                recovered_runs: self.recovered_runs.load(Relaxed),
                flight_dumps: self.flight_dumps.load(Relaxed),
                flight_dump_failures: self.flight_dump_failures.load(Relaxed),
            },
            store: StoreMetrics {
                hits: self.store_hits.load(Relaxed),
                misses: self.store_misses.load(Relaxed),
                corrupt: self.store_corrupt.load(Relaxed),
                writes: self.store_writes.load(Relaxed),
            },
            runs: RunMetrics {
                total: self.runs.load(Relaxed),
                failures: self.run_failures.load(Relaxed),
                fuel_total: self.fuel_total.load(Relaxed),
                fuel_max: self.fuel_max.load(Relaxed),
                store_cells_peak: self.cells_peak.load(Relaxed),
            },
            invoke_latency: LatencyStats {
                count: lat.count,
                min_ns: if lat.count == 0 { 0 } else { lat.min_ns },
                max_ns: lat.max_ns,
                mean_ns: lat.mean_ns(),
                p50_ns: lat.p50_ns(),
                p99_ns: lat.p99_ns(),
            },
        }
    }

    /// Zeroes every counter and the latency histogram.
    pub fn reset(&self) {
        for counter in [
            &self.source_hits,
            &self.term_hits,
            &self.misses,
            &self.evictions,
            &self.parses,
            &self.pool_batches,
            &self.pool_jobs,
            &self.pool_peak_workers,
            &self.runs,
            &self.run_failures,
            &self.fuel_total,
            &self.fuel_max,
            &self.cells_peak,
            &self.fuel_retries,
            &self.fallbacks,
            &self.recovered_runs,
            &self.flight_dumps,
            &self.flight_dump_failures,
            &self.store_hits,
            &self.store_misses,
            &self.store_corrupt,
            &self.store_writes,
        ] {
            counter.store(0, Relaxed);
        }
        *self.invoke_latency.lock().unwrap() = DurationStats::default();
    }
}

/// Artifact-cache behaviour, split by key kind (raw source hash vs
/// α-invariant term hash).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheMetrics {
    /// Loads answered from the raw-source fast path.
    pub source_hits: u64,
    /// Loads answered from the α-invariant term index.
    pub term_hits: u64,
    /// Loads that had to check and resolve from scratch.
    pub misses: u64,
    /// Artifacts evicted after a panic poisoned them.
    pub evictions: u64,
    /// Source texts the engine actually parsed. Cache hits skip parsing
    /// on the raw-source fast path, so this stays flat on warm loads —
    /// the "winners are shared, not re-parsed" invariant, measured.
    pub parses: u64,
    /// Artifacts currently cached.
    pub entries: usize,
}

/// Worker-pool activity for `load_batch` / `load_archive`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolMetrics {
    /// Parallel batches dispatched (sequential fallbacks not counted).
    pub batches: u64,
    /// Jobs pushed through those batches (deduplicated uncached
    /// sources — each job runs the full parse→check→resolve pipeline).
    pub jobs: u64,
    /// Widest worker count used by any batch.
    pub peak_workers: u64,
}

/// What the failure-recovery policy did, by stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RecoveryMetrics {
    /// Fuel-escalation retry runs.
    pub fuel_retries: u64,
    /// Runs re-executed on the reference reducer.
    pub reference_fallbacks: u64,
    /// Runs that ultimately succeeded only thanks to recovery.
    pub recovered_runs: u64,
    /// Flight-recorder post-mortems captured (trace builds only).
    pub flight_dumps: u64,
    /// `UNITS_FLIGHT_DUMP` file writes that failed (the in-memory dump
    /// still survives; the failure is counted instead of swallowed).
    pub flight_dump_failures: u64,
}

/// Persistent artifact-store behaviour. All zero for an engine built
/// without [`crate::EngineBuilder::cache_dir`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StoreMetrics {
    /// Loads answered by a verified on-disk entry — parse, check,
    /// resolve, and lowering all skipped.
    pub hits: u64,
    /// Store probes that found nothing usable (includes `corrupt`).
    pub misses: u64,
    /// Entries that failed verification and were quarantined.
    pub corrupt: u64,
    /// Fresh artifacts durably written through to disk.
    pub writes: u64,
}

/// Aggregate run outcomes and resource high-water marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunMetrics {
    /// Runs requested through the engine (`run`, `run_on`, `invoke`).
    pub total: u64,
    /// Runs that returned an error after recovery (if any) was spent.
    pub failures: u64,
    /// Fuel (machine steps) consumed across all runs.
    pub fuel_total: u64,
    /// Most fuel any single run consumed.
    pub fuel_max: u64,
    /// Most store cells any single run allocated.
    pub store_cells_peak: u64,
}

/// Invoke latency derived from a log₂-ns histogram. Percentiles are
/// bucket upper-bound estimates clamped to the observed range.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LatencyStats {
    /// How many runs were timed.
    pub count: u64,
    /// Fastest run, in nanoseconds.
    pub min_ns: u64,
    /// Slowest run, in nanoseconds.
    pub max_ns: u64,
    /// Mean run latency, in nanoseconds.
    pub mean_ns: u64,
    /// Median estimate, in nanoseconds.
    pub p50_ns: u64,
    /// 99th-percentile estimate, in nanoseconds.
    pub p99_ns: u64,
}

/// Everything [`crate::Engine::metrics_snapshot`] reports, as plain
/// data. Serializes to JSON with [`MetricsSnapshot::to_json`] for the
/// bench harness and CI gates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// Cache hits/misses/evictions per key kind.
    pub cache: CacheMetrics,
    /// Worker-pool batches, jobs, and peak width.
    pub pool: PoolMetrics,
    /// Recovery actions by policy stage.
    pub recovery: RecoveryMetrics,
    /// Persistent artifact-store hits, misses, corruption, and writes.
    pub store: StoreMetrics,
    /// Run totals, fuel, and store-cell high-water marks.
    pub runs: RunMetrics,
    /// Invoke latency histogram summary (p50/p99).
    pub invoke_latency: LatencyStats,
}

impl MetricsSnapshot {
    /// The snapshot as one JSON object (zero-dep, validated in tests).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"cache\":{{\"source_hits\":{},\"term_hits\":{},\"misses\":{},\
             \"evictions\":{},\"parses\":{},\"entries\":{}}},\
             \"pool\":{{\"batches\":{},\"jobs\":{},\"peak_workers\":{}}},\
             \"recovery\":{{\"fuel_retries\":{},\"reference_fallbacks\":{},\
             \"recovered_runs\":{},\"flight_dumps\":{},\
             \"flight_dump_failures\":{}}},\
             \"store\":{{\"hits\":{},\"misses\":{},\"corrupt\":{},\
             \"writes\":{}}},\
             \"runs\":{{\"total\":{},\"failures\":{},\"fuel_total\":{},\
             \"fuel_max\":{},\"store_cells_peak\":{}}},\
             \"invoke_latency\":{{\"count\":{},\"min_ns\":{},\"max_ns\":{},\
             \"mean_ns\":{},\"p50_ns\":{},\"p99_ns\":{}}}}}",
            self.cache.source_hits,
            self.cache.term_hits,
            self.cache.misses,
            self.cache.evictions,
            self.cache.parses,
            self.cache.entries,
            self.pool.batches,
            self.pool.jobs,
            self.pool.peak_workers,
            self.recovery.fuel_retries,
            self.recovery.reference_fallbacks,
            self.recovery.recovered_runs,
            self.recovery.flight_dumps,
            self.recovery.flight_dump_failures,
            self.store.hits,
            self.store.misses,
            self.store.corrupt,
            self.store.writes,
            self.runs.total,
            self.runs.failures,
            self.runs.fuel_total,
            self.runs.fuel_max,
            self.runs.store_cells_peak,
            self.invoke_latency.count,
            self.invoke_latency.min_ns,
            self.invoke_latency.max_ns,
            self.invoke_latency.mean_ns,
            self.invoke_latency.p50_ns,
            self.invoke_latency.p99_ns,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_json_is_valid_and_carries_percentiles() {
        let metrics = EngineMetrics::default();
        metrics.note_run(Duration::from_micros(10), true);
        metrics.note_run(Duration::from_micros(20), false);
        metrics.note_machine(100, 7);
        metrics.note_machine(40, 9);
        metrics.note_batch(3, 2);
        let snap = metrics.snapshot(5);
        assert_eq!(snap.runs.total, 2);
        assert_eq!(snap.runs.failures, 1);
        assert_eq!(snap.runs.fuel_total, 140);
        assert_eq!(snap.runs.fuel_max, 100);
        assert_eq!(snap.runs.store_cells_peak, 9);
        assert_eq!(snap.pool.jobs, 3);
        assert_eq!(snap.invoke_latency.count, 2);
        assert!(snap.invoke_latency.p50_ns <= snap.invoke_latency.p99_ns);
        assert!(snap.invoke_latency.p99_ns <= snap.invoke_latency.max_ns);
        let json = snap.to_json();
        units_trace::json::validate(&json).unwrap();
        assert!(json.contains("\"p50_ns\"") && json.contains("\"p99_ns\""));
        assert!(json.contains("\"parses\""));
        assert!(json.contains("\"store\"") && json.contains("\"corrupt\""));
        assert!(json.contains("\"flight_dump_failures\""));
        metrics.reset();
        assert_eq!(metrics.snapshot(0), MetricsSnapshot::default());
    }
}
