//! The engine's always-on metrics plane.
//!
//! Unlike the event hooks in `units-trace` (feature-gated to no-ops),
//! these are plain per-engine counters — a handful of `Cell` bumps and
//! one `Instant` read per invoke — cheap enough to keep in every build,
//! so `Engine::metrics_snapshot` reports cache behaviour, recoveries,
//! worker-pool usage, fuel, store-cell high-water marks, and invoke
//! latency percentiles whether or not the `trace` feature is compiled.
//!
//! Latency uses [`units_trace::DurationStats`] (the *types* in
//! `units-trace` always compile): log₂-ns histogram buckets with
//! derived p50/p99.

use std::cell::{Cell, RefCell};
use std::time::Duration;

use units_trace::DurationStats;

/// Internal mutable storage, one per [`crate::Engine`]. Engines are
/// single-threaded handles (`Rc`/`RefCell` inside), so plain `Cell`s
/// suffice; worker threads report through the engine after joining.
#[derive(Debug, Default)]
pub(crate) struct EngineMetrics {
    pub source_hits: Cell<u64>,
    pub term_hits: Cell<u64>,
    pub misses: Cell<u64>,
    pub evictions: Cell<u64>,
    pub pool_batches: Cell<u64>,
    pub pool_jobs: Cell<u64>,
    pub pool_peak_workers: Cell<u64>,
    pub runs: Cell<u64>,
    pub run_failures: Cell<u64>,
    pub fuel_total: Cell<u64>,
    pub fuel_max: Cell<u64>,
    pub cells_peak: Cell<u64>,
    pub fuel_retries: Cell<u64>,
    pub fallbacks: Cell<u64>,
    pub recovered_runs: Cell<u64>,
    pub flight_dumps: Cell<u64>,
    pub invoke_latency: RefCell<DurationStats>,
}

impl EngineMetrics {
    /// Records one completed run (including any recovery work).
    pub fn note_run(&self, latency: Duration, ok: bool) {
        self.runs.set(self.runs.get() + 1);
        if !ok {
            self.run_failures.set(self.run_failures.get() + 1);
        }
        let ns = u64::try_from(latency.as_nanos()).unwrap_or(u64::MAX);
        self.invoke_latency.borrow_mut().record_ns(ns);
    }

    /// Folds one machine's end-of-run resource usage in.
    pub fn note_machine(&self, fuel: u64, cells: u64) {
        self.fuel_total.set(self.fuel_total.get() + fuel);
        self.fuel_max.set(self.fuel_max.get().max(fuel));
        self.cells_peak.set(self.cells_peak.get().max(cells));
    }

    /// Records one worker-pool batch of `jobs` jobs on `workers`
    /// threads.
    pub fn note_batch(&self, jobs: u64, workers: u64) {
        self.pool_batches.set(self.pool_batches.get() + 1);
        self.pool_jobs.set(self.pool_jobs.get() + jobs);
        self.pool_peak_workers.set(self.pool_peak_workers.get().max(workers));
    }

    /// A structured copy of everything, with `entries` supplied by the
    /// cache (it owns the map).
    pub fn snapshot(&self, entries: usize) -> MetricsSnapshot {
        let lat = self.invoke_latency.borrow();
        MetricsSnapshot {
            cache: CacheMetrics {
                source_hits: self.source_hits.get(),
                term_hits: self.term_hits.get(),
                misses: self.misses.get(),
                evictions: self.evictions.get(),
                entries,
            },
            pool: PoolMetrics {
                batches: self.pool_batches.get(),
                jobs: self.pool_jobs.get(),
                peak_workers: self.pool_peak_workers.get(),
            },
            recovery: RecoveryMetrics {
                fuel_retries: self.fuel_retries.get(),
                reference_fallbacks: self.fallbacks.get(),
                recovered_runs: self.recovered_runs.get(),
                flight_dumps: self.flight_dumps.get(),
            },
            runs: RunMetrics {
                total: self.runs.get(),
                failures: self.run_failures.get(),
                fuel_total: self.fuel_total.get(),
                fuel_max: self.fuel_max.get(),
                store_cells_peak: self.cells_peak.get(),
            },
            invoke_latency: LatencyStats {
                count: lat.count,
                min_ns: if lat.count == 0 { 0 } else { lat.min_ns },
                max_ns: lat.max_ns,
                mean_ns: lat.mean_ns(),
                p50_ns: lat.p50_ns(),
                p99_ns: lat.p99_ns(),
            },
        }
    }

    /// Zeroes every counter and the latency histogram.
    pub fn reset(&self) {
        self.source_hits.set(0);
        self.term_hits.set(0);
        self.misses.set(0);
        self.evictions.set(0);
        self.pool_batches.set(0);
        self.pool_jobs.set(0);
        self.pool_peak_workers.set(0);
        self.runs.set(0);
        self.run_failures.set(0);
        self.fuel_total.set(0);
        self.fuel_max.set(0);
        self.cells_peak.set(0);
        self.fuel_retries.set(0);
        self.fallbacks.set(0);
        self.recovered_runs.set(0);
        self.flight_dumps.set(0);
        *self.invoke_latency.borrow_mut() = DurationStats::default();
    }
}

/// Artifact-cache behaviour, split by key kind (raw source hash vs
/// α-invariant term hash).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheMetrics {
    /// Loads answered from the raw-source fast path.
    pub source_hits: u64,
    /// Loads answered from the α-invariant term index.
    pub term_hits: u64,
    /// Loads that had to check and resolve from scratch.
    pub misses: u64,
    /// Artifacts evicted after a panic poisoned them.
    pub evictions: u64,
    /// Artifacts currently cached.
    pub entries: usize,
}

/// Worker-pool activity for `load_batch` / `load_archive`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolMetrics {
    /// Parallel batches dispatched (sequential fallbacks not counted).
    pub batches: u64,
    /// Jobs pushed through those batches.
    pub jobs: u64,
    /// Widest worker count used by any batch.
    pub peak_workers: u64,
}

/// What the failure-recovery policy did, by stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RecoveryMetrics {
    /// Fuel-escalation retry runs.
    pub fuel_retries: u64,
    /// Runs re-executed on the reference reducer.
    pub reference_fallbacks: u64,
    /// Runs that ultimately succeeded only thanks to recovery.
    pub recovered_runs: u64,
    /// Flight-recorder post-mortems captured (trace builds only).
    pub flight_dumps: u64,
}

/// Aggregate run outcomes and resource high-water marks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunMetrics {
    /// Runs requested through the engine (`run`, `run_on`, `invoke`).
    pub total: u64,
    /// Runs that returned an error after recovery (if any) was spent.
    pub failures: u64,
    /// Fuel (machine steps) consumed across all runs.
    pub fuel_total: u64,
    /// Most fuel any single run consumed.
    pub fuel_max: u64,
    /// Most store cells any single run allocated.
    pub store_cells_peak: u64,
}

/// Invoke latency derived from a log₂-ns histogram. Percentiles are
/// bucket upper-bound estimates clamped to the observed range.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LatencyStats {
    /// How many runs were timed.
    pub count: u64,
    /// Fastest run, in nanoseconds.
    pub min_ns: u64,
    /// Slowest run, in nanoseconds.
    pub max_ns: u64,
    /// Mean run latency, in nanoseconds.
    pub mean_ns: u64,
    /// Median estimate, in nanoseconds.
    pub p50_ns: u64,
    /// 99th-percentile estimate, in nanoseconds.
    pub p99_ns: u64,
}

/// Everything [`crate::Engine::metrics_snapshot`] reports, as plain
/// data. Serializes to JSON with [`MetricsSnapshot::to_json`] for the
/// bench harness and CI gates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MetricsSnapshot {
    /// Cache hits/misses/evictions per key kind.
    pub cache: CacheMetrics,
    /// Worker-pool batches, jobs, and peak width.
    pub pool: PoolMetrics,
    /// Recovery actions by policy stage.
    pub recovery: RecoveryMetrics,
    /// Run totals, fuel, and store-cell high-water marks.
    pub runs: RunMetrics,
    /// Invoke latency histogram summary (p50/p99).
    pub invoke_latency: LatencyStats,
}

impl MetricsSnapshot {
    /// The snapshot as one JSON object (zero-dep, validated in tests).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"cache\":{{\"source_hits\":{},\"term_hits\":{},\"misses\":{},\
             \"evictions\":{},\"entries\":{}}},\
             \"pool\":{{\"batches\":{},\"jobs\":{},\"peak_workers\":{}}},\
             \"recovery\":{{\"fuel_retries\":{},\"reference_fallbacks\":{},\
             \"recovered_runs\":{},\"flight_dumps\":{}}},\
             \"runs\":{{\"total\":{},\"failures\":{},\"fuel_total\":{},\
             \"fuel_max\":{},\"store_cells_peak\":{}}},\
             \"invoke_latency\":{{\"count\":{},\"min_ns\":{},\"max_ns\":{},\
             \"mean_ns\":{},\"p50_ns\":{},\"p99_ns\":{}}}}}",
            self.cache.source_hits,
            self.cache.term_hits,
            self.cache.misses,
            self.cache.evictions,
            self.cache.entries,
            self.pool.batches,
            self.pool.jobs,
            self.pool.peak_workers,
            self.recovery.fuel_retries,
            self.recovery.reference_fallbacks,
            self.recovery.recovered_runs,
            self.recovery.flight_dumps,
            self.runs.total,
            self.runs.failures,
            self.runs.fuel_total,
            self.runs.fuel_max,
            self.runs.store_cells_peak,
            self.invoke_latency.count,
            self.invoke_latency.min_ns,
            self.invoke_latency.max_ns,
            self.invoke_latency.mean_ns,
            self.invoke_latency.p50_ns,
            self.invoke_latency.p99_ns,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_json_is_valid_and_carries_percentiles() {
        let metrics = EngineMetrics::default();
        metrics.note_run(Duration::from_micros(10), true);
        metrics.note_run(Duration::from_micros(20), false);
        metrics.note_machine(100, 7);
        metrics.note_machine(40, 9);
        metrics.note_batch(3, 2);
        let snap = metrics.snapshot(5);
        assert_eq!(snap.runs.total, 2);
        assert_eq!(snap.runs.failures, 1);
        assert_eq!(snap.runs.fuel_total, 140);
        assert_eq!(snap.runs.fuel_max, 100);
        assert_eq!(snap.runs.store_cells_peak, 9);
        assert_eq!(snap.pool.jobs, 3);
        assert_eq!(snap.invoke_latency.count, 2);
        assert!(snap.invoke_latency.p50_ns <= snap.invoke_latency.p99_ns);
        assert!(snap.invoke_latency.p99_ns <= snap.invoke_latency.max_ns);
        let json = snap.to_json();
        units_trace::json::validate(&json).unwrap();
        assert!(json.contains("\"p50_ns\"") && json.contains("\"p99_ns\""));
        metrics.reset();
        assert_eq!(metrics.snapshot(0), MetricsSnapshot::default());
    }
}
