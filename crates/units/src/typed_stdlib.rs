//! The phone book of §3, fully statically typed (UNITc) — the paper's
//! figures as they are actually drawn, with every port annotated.
//!
//! The `info` type flows from [`number_info`] into [`database`] through
//! the linking graph (Fig. 2 links a *type* across units), `db` flows
//! from the phone book into the GUI and `Main`, and `error` flows
//! backwards from the GUI into the phone book — the cyclic, typed link
//! structure of Fig. 3.

/// Fig. 1: the `Database` unit with its full interface types.
pub fn database() -> String {
    r#"(unit (import (type info) (error (-> str void)))
          (export (type db)
                  (new (-> db))
                  (insert (-> db str info void))
                  (delete (-> db str void))
                  (lookup (-> db str info))
                  (has (-> db str bool)))
      (datatype db (mkdb undb (hash info)) db?)
      (define new (-> db) (lambda () (mkdb ((inst hash-new info)))))
      (define insert (-> db str info void)
        (lambda ((d db) (key str) (v info))
          (if ((inst hash-has? info) (undb d) key)
              (error (string-append "duplicate key: " key))
              ((inst hash-set! info) (undb d) key v))))
      (define delete (-> db str void)
        (lambda ((d db) (key str)) ((inst hash-remove! info) (undb d) key)))
      (define lookup (-> db str info)
        (lambda ((d db) (key str)) ((inst hash-get info) (undb d) key)))
      (define has (-> db str bool)
        (lambda ((d db) (key str)) ((inst hash-has? info) (undb d) key)))
      (init (display "database ready")))"#
        .to_string()
}

/// The `NumberInfo` unit: defines and exports the `info` type.
pub fn number_info() -> String {
    r#"(unit (import)
          (export (type info) (numInfo (-> int info)) (infoToString (-> info str)))
      (datatype info (mkinfo uninfo int) info?)
      (define numInfo (-> int info) (lambda ((n int)) (mkinfo n)))
      (define infoToString (-> info str)
        (lambda ((i info)) (int->string (uninfo i)))))"#
        .to_string()
}

/// Fig. 2: the typed `PhoneBook` compound. `info` links from
/// `NumberInfo` into `Database`; `error` passes through from the
/// outside; `delete` is hidden.
pub fn phonebook() -> String {
    format!(
        "(compound (import (error (-> str void)))
                   (export (type db) (type info)
                           (new (-> db)) (insert (-> db str info void))
                           (lookup (-> db str info)) (has (-> db str bool))
                           (numInfo (-> int info)) (infoToString (-> info str)))
           (link ({database}
                  (with (type info) (error (-> str void)))
                  (provides (type db) (new (-> db)) (insert (-> db str info void))
                            (delete (-> db str void)) (lookup (-> db str info))
                            (has (-> db str bool))))
                 ({number_info}
                  (with)
                  (provides (type info) (numInfo (-> int info))
                            (infoToString (-> info str))))))",
        database = database(),
        number_info = number_info(),
    )
}

/// Fig. 3: the typed GUI — exports `openBook : db→bool` and the `error`
/// handler the phone book calls back into.
pub fn gui() -> String {
    r#"(unit (import (type db) (type info)
                 (new (-> db)) (insert (-> db str info void))
                 (lookup (-> db str info)) (has (-> db str bool))
                 (numInfo (-> int info)) (infoToString (-> info str)))
          (export (openBook (-> db bool)) (error (-> str void)))
      (define error (-> str void)
        (lambda ((msg str)) (display (string-append "ERROR: " msg))))
      (define openBook (-> db bool)
        (lambda ((pb db))
          (insert pb "pat" (numInfo 5551234))
          (insert pb "chris" (numInfo 5559876))
          (display (string-append "pat -> " (infoToString (lookup pb "pat"))))
          (has pb "chris")))
      (init (display "typed gui ready")))"#
        .to_string()
}

/// Fig. 3: the typed `Main` unit; its `bool` initialization value is the
/// program's result.
pub fn main_unit() -> String {
    "(unit (import (type db) (new (-> db)) (openBook (-> db bool))) (export)
       (init (openBook (new))))"
        .to_string()
}

/// Fig. 3: the complete, typed `IPB` program, ready to `invoke`.
pub fn ipb_program() -> String {
    format!(
        "(invoke (compound (import) (export)
           (link ({phonebook}
                  (with (error (-> str void)))
                  (provides (type db) (type info)
                            (new (-> db)) (insert (-> db str info void))
                            (lookup (-> db str info)) (has (-> db str bool))
                            (numInfo (-> int info)) (infoToString (-> info str))))
                 ({gui}
                  (with (type db) (type info)
                        (new (-> db)) (insert (-> db str info void))
                        (lookup (-> db str info)) (has (-> db str bool))
                        (numInfo (-> int info)) (infoToString (-> info str)))
                  (provides (openBook (-> db bool)) (error (-> str void))))
                 ({main}
                  (with (type db) (new (-> db)) (openBook (-> db bool)))
                  (provides)))))",
        phonebook = phonebook(),
        gui = gui(),
        main = main_unit(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Engine, Level, Observation, Ty};

    fn typed() -> Engine {
        Engine::builder().level(Level::Constructed).build()
    }

    #[test]
    fn typed_ipb_checks_at_bool_and_runs() {
        let engine = typed();
        let p = engine.load(&ipb_program()).unwrap();
        assert_eq!(p.ty(), Some(&Ty::Bool));
        let outcome = p.run_differential().unwrap();
        assert_eq!(outcome.value, Observation::Bool(true));
        assert_eq!(
            outcome.output,
            vec!["database ready", "typed gui ready", "pat -> 5551234"]
        );
    }

    #[test]
    fn typed_phonebook_signature_hides_delete() {
        let engine = typed();
        let p = engine.load(&phonebook()).unwrap();
        let ty = p.ty().cloned().unwrap();
        let sig = ty.as_sig().unwrap();
        assert!(sig.exports.val_port(&"insert".into()).is_some());
        assert!(sig.exports.val_port(&"delete".into()).is_none());
        assert!(sig.exports.ty_port(&"db".into()).is_some());
        assert!(sig.imports.val_port(&"error".into()).is_some());
    }

    #[test]
    fn typed_units_check_in_isolation() {
        let engine = typed();
        for src in [database(), number_info(), gui(), main_unit()] {
            engine.load(&src).unwrap_or_else(|e| panic!("{src}\n{e}"));
        }
    }
}
