//! ASCII rendering of the paper's semi-graphical notation.
//!
//! The paper draws a unit as a box with three sections — imports on top,
//! definitions and the initialization expression in the middle, exports
//! at the bottom (Fig. 1) — and draws linking by connecting boxes
//! (Figs. 2/3). [`render`] produces the textual equivalent, which the
//! `units-repl --diagram` flag prints. (The graphical editor the paper
//! mentions is substituted by this renderer; DESIGN.md §6.)

use std::fmt::Write as _;

use units_kernel::{Expr, Ports, TypeDefn, UnitExpr};

/// Renders a unit or compound expression as a box diagram; other
/// expressions render as a one-line summary.
///
/// # Examples
///
/// ```
/// use units::{diagram, parse_expr};
/// let unit = parse_expr(
///     "(unit (import error) (export new) (define new (lambda () 1)))",
/// ).unwrap();
/// let picture = diagram::render(&unit);
/// assert!(picture.contains("error"));
/// assert!(picture.contains("new"));
/// assert!(picture.starts_with('┌'));
/// ```
pub fn render(expr: &Expr) -> String {
    match expr {
        Expr::Unit(u) => render_lines(&unit_lines(u)).join("\n"),
        Expr::Compound(c) => {
            let mut out = String::new();
            let _ = writeln!(out, "compound");
            let _ = writeln!(out, "  imports: {}", ports_line(&c.imports));
            let _ = writeln!(out, "  exports: {}", ports_line(&c.exports));
            for (i, link) in c.links.iter().enumerate() {
                let _ = writeln!(out, "  constituent {i}:");
                let inner = match &link.expr {
                    Expr::Unit(u) => render_lines(&unit_lines(u)),
                    other => vec![format!("⟨{}⟩", summary(other))],
                };
                for line in inner {
                    let _ = writeln!(out, "    {line}");
                }
                for port in &link.with.vals {
                    let outer = link.renames.outer_import_val(&port.name);
                    let _ = writeln!(out, "      ◀── {} (from {outer})", port.name);
                }
                for port in &link.provides.vals {
                    let outer = link.renames.outer_export_val(&port.name);
                    let _ = writeln!(out, "      ──▶ {} (as {outer})", port.name);
                }
            }
            out.pop();
            out
        }
        other => summary(other),
    }
}

fn summary(expr: &Expr) -> String {
    match expr {
        Expr::Var(x) => format!("unit variable `{x}`"),
        Expr::Invoke(_) => "invoke expression".to_string(),
        Expr::Seal(inner, _) => format!("sealed {}", summary(inner)),
        _ => "expression".to_string(),
    }
}

fn ports_line(ports: &Ports) -> String {
    let mut parts = Vec::new();
    for t in &ports.types {
        parts.push(format!("{}::{}", t.name, t.kind));
    }
    for v in &ports.vals {
        match &v.ty {
            Some(ty) => parts.push(format!("{}:{}", v.name, ty)),
            None => parts.push(v.name.as_str().to_string()),
        }
    }
    if parts.is_empty() {
        "(none)".to_string()
    } else {
        parts.join("  ")
    }
}

/// The three box sections of Fig. 1, as raw lines.
fn unit_lines(u: &UnitExpr) -> Vec<Section> {
    let mut imports = Vec::new();
    for t in &u.imports.types {
        imports.push(format!("{}::{}", t.name, t.kind));
    }
    for v in &u.imports.vals {
        match &v.ty {
            Some(ty) => imports.push(format!("{}:{}", v.name, ty)),
            None => imports.push(v.name.as_str().to_string()),
        }
    }
    let mut middle = Vec::new();
    for td in &u.types {
        match td {
            TypeDefn::Data(d) => middle.push(format!(
                "type {} = {}",
                d.name,
                d.variants
                    .iter()
                    .map(|v| format!("{} {}", v.ctor, &v.payload))
                    .collect::<Vec<_>>()
                    .join(" | ")
            )),
            TypeDefn::Alias(a) => {
                middle.push(format!("type {} = {}", a.name, &a.body))
            }
        }
    }
    for d in &u.vals {
        match &d.ty {
            Some(ty) => middle.push(format!("val {} : {}", d.name, ty)),
            None => middle.push(format!("val {} = …", d.name)),
        }
    }
    if u.init != Expr::void() {
        middle.push("⟨initialization expression⟩".to_string());
    }
    let mut exports = Vec::new();
    for t in &u.exports.types {
        exports.push(format!("{}::{}", t.name, t.kind));
    }
    for v in &u.exports.vals {
        match &v.ty {
            Some(ty) => exports.push(format!("{}:{}", v.name, ty)),
            None => exports.push(v.name.as_str().to_string()),
        }
    }
    vec![imports, middle, exports]
}

type Section = Vec<String>;

/// Draws the three sections as a single box with separators.
fn render_lines(sections: &[Section]) -> Vec<String> {
    let width = sections
        .iter()
        .flatten()
        .map(|l| l.chars().count())
        .max()
        .unwrap_or(0)
        .max(8);
    let horiz = |l: char, m: char, r: char| {
        let mut s = String::new();
        s.push(l);
        for _ in 0..width + 2 {
            s.push(m);
        }
        s.push(r);
        s
    };
    let mut out = vec![horiz('┌', '─', '┐')];
    for (i, section) in sections.iter().enumerate() {
        if i > 0 {
            out.push(horiz('├', '─', '┤'));
        }
        if section.is_empty() {
            out.push(format!("│ {:<width$} │", "", width = width));
        }
        for line in section {
            let pad = width - line.chars().count();
            out.push(format!("│ {line}{} │", " ".repeat(pad)));
        }
    }
    out.push(horiz('└', '─', '┘'));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use units_syntax::parse_expr;

    #[test]
    fn unit_boxes_have_three_sections() {
        let u = parse_expr(
            "(unit (import (type info) (error (-> str void)))
                   (export (new (-> db)))
               (datatype db (mk unmk int) db?)
               (define new (-> db) (lambda () (mk 1)))
               (init (display \"up\")))",
        )
        .unwrap();
        let picture = render(&u);
        // Three sections → two separators.
        assert_eq!(picture.matches('├').count(), 2);
        assert!(picture.contains("info::Ω"));
        assert!(picture.contains("error:str→void"));
        assert!(picture.contains("type db"));
        assert!(picture.contains("new:"));
        assert!(picture.contains("initialization"));
        // All lines align.
        let widths: Vec<usize> =
            picture.lines().map(|l| l.chars().count()).collect();
        assert!(widths.windows(2).all(|w| w[0] == w[1]), "{picture}");
    }

    #[test]
    fn compounds_list_constituents_and_links() {
        let c = parse_expr(
            "(compound (import error) (export new)
               (link ((unit (import error) (export new)
                        (define new (lambda () 1)))
                      (with error) (provides (as new make)))))",
        )
        .unwrap();
        let picture = render(&c);
        assert!(picture.contains("compound"));
        assert!(picture.contains("constituent 0"));
        assert!(picture.contains("◀── error"));
        assert!(picture.contains("──▶ new (as make)"));
    }

    #[test]
    fn non_units_render_a_summary() {
        assert_eq!(render(&Expr::var("u")), "unit variable `u`");
        assert!(render(&parse_expr("(invoke u)").unwrap()).contains("invoke"));
    }
}
