//! Engine sessions: cached artifacts, parallel checking, budgeted runs.
//!
//! An [`Engine`] is a long-lived session that owns a cache of checked and
//! slot-resolved unit artifacts. The cache is keyed by a content hash of
//! the alpha-normalized kernel term together with the [`CheckOptions`],
//! so loading the same source twice — or an alpha-renamed copy of it —
//! skips the Fig. 10/15/19 checks and the §4.1.6 resolution prepass, and
//! every instantiation shares one compiled copy of the code (the paper's
//! "one copy of the code regardless of how many times the unit is linked
//! or invoked").
//!
//! Independent sources (top-level batches, [`Archive`] entries) run the
//! whole parse → check → resolve → lower pipeline in parallel on a
//! `std::thread` worker pool: the `Arc`-backed kernel terms are `Send`,
//! so workers admit finished artifacts directly into the shared cache —
//! exactly once per program — and the engine itself is `Send + Sync`,
//! so cached artifacts can also be *invoked* from many threads at once.
//! The `UNITS_ENGINE_THREADS` environment variable pins the pool size
//! (1 forces fully sequential, deterministic loading).
//!
//! # Owned handles
//!
//! [`Engine`] is a cheap, cloneable handle onto a shared session: clones
//! share one cache, one metrics plane, one policy. [`Loaded`] — what
//! [`Engine::load`] hands back — is *owned*: it holds the artifact by
//! `Arc` and the session by `Weak` reference, so it can be stored in a
//! struct, sent to another thread, or held across a cache eviction
//! without borrowing the engine. Running a `Loaded` whose engine has
//! been dropped fails with [`Error::SessionClosed`]; everything that
//! needs only the artifact (its type, its term, its disassembly) still
//! works. This is the shape a long-lived server needs: handles that
//! survive swaps, move across worker threads, and keep serving in-flight
//! requests on the artifact they captured.
//!
//! Execution is governed by [`Limits`]: fuel, evaluation depth, and
//! store-cell budgets all surface as [`Error::ResourceExhausted`] instead
//! of a panic or a stack overflow. [`Loaded::run_with`] overrides the
//! session budgets for one run — per-request admission control for a
//! multi-tenant caller.
//!
//! # The fault plane
//!
//! Every entry point — [`Engine::load`], [`Loaded::run_on`], and the
//! batch workers — sits behind an unwind boundary: a panic anywhere in
//! the pipeline (including one deliberately fired by an armed
//! [`units_trace::faults::FaultPlane`]) is caught and surfaced as
//! [`Error::Internal`] naming the stage, and the artifact a panicking
//! run was using is evicted from the cache. The session itself stays
//! usable. On top of that, [`FallbackPolicy`] adds graceful
//! degradation: bounded retries with escalated fuel when a budget runs
//! out, and — for compiled-backend faults — a clean re-run on the
//! Fig. 11 reference reducer, optionally diagnosed differentially.
//! [`Engine::last_recovery`] reports what the most recent run needed.
//!
//! # Example
//!
//! ```
//! use units::{Engine, Level, Limits, Observation};
//!
//! let engine = Engine::builder()
//!     .level(Level::Untyped)
//!     .limits(Limits::none().fuel(100_000))
//!     .build();
//! let outcome = engine.invoke(
//!     "(define hello (unit (import) (export) (init (* 6 7))))
//!      (invoke hello)",
//! )?;
//! assert_eq!(outcome.value, Observation::Int(42));
//! // A second invocation of the same source is a cache hit.
//! engine.invoke("(define hello (unit (import) (export) (init (* 6 7))))
//!                (invoke hello)")?;
//! assert_eq!(engine.cache_stats().hits, 1);
//! # Ok::<(), units::Error>(())
//! ```

use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, HashSet};
use std::hash::{Hash, Hasher};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::Ordering::Relaxed;
use std::sync::{Arc, Mutex, OnceLock, Weak};
use std::time::Instant;

use units_check::{check_program, CheckOptions, Level, Strictness};
use units_compile::{evaluate_program, lower_program, resolve_program, Archive, ChunkProfile};
use units_kernel::{alpha_eq, alpha_hash, Expr, Ty};
use units_reduce::Reducer;
use units_runtime::{execute, Chunk, Limits, Machine, Resource};
use units_store::{Lookup, Store};
use units_syntax::parse_file;
use units_trace::faults::FaultPlane;
use units_trace::{recorder, FlightDump};

use crate::error::Error;
use crate::metrics::{bump, EngineMetrics, MetricsSnapshot};
use crate::observe::{observe_expr, observe_value};
use crate::outcome::{Backend, Outcome};

/// A checked (and, for the production backend, slot-resolved) program,
/// shared by every load that produced it.
#[derive(Debug)]
struct Artifact {
    /// The parsed kernel term, as written.
    expr: Expr,
    /// The program's type at typed levels.
    ty: Option<Ty>,
    /// The lexical-address-resolved form the compiled backend runs.
    resolved: Option<Expr>,
    /// The flat-bytecode chunk the VM backend runs: lowered from the
    /// resolved form on the first bytecode run, then shared by every
    /// later run. Because the artifact itself is cached under both the
    /// raw-source and alpha-normalized keys, the chunk is too.
    chunk: OnceLock<Arc<Chunk>>,
}

impl Artifact {
    /// The bytecode chunk, lowering (and caching) it on first use.
    /// `OnceLock` makes concurrent first uses race benignly: one lowering
    /// wins, every thread shares the winner.
    fn chunk(&self) -> Arc<Chunk> {
        self.chunk
            .get_or_init(|| {
                let _timer = units_trace::time("lower");
                lower_program(self.resolved.as_ref().unwrap_or(&self.expr))
            })
            .clone()
    }
}

#[derive(Debug, Default)]
struct Cache {
    /// Exact-source fast path: hash of the raw text (plus options).
    by_source: HashMap<u64, Arc<Artifact>>,
    /// Content path: alpha-normalized term hash (plus options), with the
    /// bucket confirmed by [`alpha_eq`] to rule out collisions.
    by_term: HashMap<u64, Vec<Arc<Artifact>>>,
}

/// Cache counters, for tests and dashboards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Loads satisfied from the cache (by source text or by term).
    pub hits: u64,
    /// Loads that had to check and resolve from scratch.
    pub misses: u64,
    /// Distinct artifacts currently cached.
    pub entries: usize,
}

/// What the engine does about a failed run before giving up.
///
/// The default ([`FallbackPolicy::none`]) surfaces every failure as-is —
/// existing behavior, nothing re-runs. [`FallbackPolicy::reference`]
/// turns on graceful degradation: when a production backend — the
/// compiled tree-walker or the bytecode VM — faults
/// (caught panic, injected fault, exhausted budget), the engine re-runs
/// the program on the Fig. 11 reference reducer — with any armed fault
/// plane suspended, so the recovery itself is clean — and reports that
/// outcome instead. [`FallbackPolicy::fuel_retries`] independently adds
/// bounded re-runs with an escalated fuel budget when fuel runs out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FallbackPolicy {
    reference_fallback: bool,
    fuel_retries: u32,
    fuel_factor: u64,
    diagnose: bool,
}

impl Default for FallbackPolicy {
    fn default() -> FallbackPolicy {
        FallbackPolicy::none()
    }
}

impl FallbackPolicy {
    /// Report failures as-is: no fallback, no retries (the default).
    pub fn none() -> FallbackPolicy {
        FallbackPolicy {
            reference_fallback: false,
            fuel_retries: 0,
            fuel_factor: 2,
            diagnose: false,
        }
    }

    /// Fall back to the reference reducer on production-backend faults
    /// (compiled tree-walker or bytecode VM), with differential
    /// diagnosis of the divergence (in `trace` builds).
    pub fn reference() -> FallbackPolicy {
        FallbackPolicy { reference_fallback: true, fuel_retries: 0, fuel_factor: 2, diagnose: true }
    }

    /// Re-run up to `retries` times with the fuel budget multiplied by
    /// the escalation factor each time, when fuel is what ran out.
    pub fn fuel_retries(mut self, retries: u32) -> FallbackPolicy {
        self.fuel_retries = retries;
        self
    }

    /// Sets the fuel escalation factor (default 2, clamped to ≥ 2).
    pub fn fuel_factor(mut self, factor: u64) -> FallbackPolicy {
        self.fuel_factor = factor.max(2);
        self
    }

    /// Enables or disables the differential diagnosis re-run after a
    /// successful fallback. Only `trace` builds can honor it.
    pub fn diagnose(mut self, on: bool) -> FallbackPolicy {
        self.diagnose = on;
        self
    }
}

/// The engine's record of the most recent [`Loaded::run`] whose primary
/// attempt failed: what the failure was and what the
/// [`FallbackPolicy`] did about it. A run that succeeds outright
/// clears it ([`Engine::last_recovery`] returns `None`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Recovery {
    /// The primary failure, rendered. When retries changed the error
    /// (or exhausted without curing it), this is the final one.
    pub failure: String,
    /// Fuel-escalation re-runs performed.
    pub retries: u32,
    /// Whether the reference reducer produced the final outcome.
    pub fell_back: bool,
    /// The rendered differential-diagnosis report of the fallback,
    /// when the policy asked for one and the build carries the `trace`
    /// feature.
    pub divergence: Option<String>,
}

/// Configures and constructs an [`Engine`].
#[derive(Debug, Clone)]
pub struct EngineBuilder {
    level: Level,
    strictness: Strictness,
    backend: Backend,
    limits: Limits,
    resolve: Option<bool>,
    threads: Option<usize>,
    policy: FallbackPolicy,
    worker_faults: Option<FaultPlane>,
    cache_dir: Option<PathBuf>,
}

impl Default for EngineBuilder {
    fn default() -> EngineBuilder {
        EngineBuilder {
            // UNITd: the facade checks statically only when a typed
            // level is asked for.
            level: Level::Untyped,
            strictness: Strictness::default(),
            backend: Backend::default(),
            limits: Limits::default(),
            resolve: None,
            threads: None,
            policy: FallbackPolicy::none(),
            worker_faults: None,
            cache_dir: None,
        }
    }
}

impl EngineBuilder {
    /// Selects the calculus to check against (default [`Level::Untyped`]).
    pub fn level(mut self, level: Level) -> EngineBuilder {
        self.level = level;
        self
    }

    /// Selects paper-strict or MzScheme-strict definition checking.
    pub fn strictness(mut self, strictness: Strictness) -> EngineBuilder {
        self.strictness = strictness;
        self
    }

    /// Selects the default backend for [`Loaded::run`].
    pub fn backend(mut self, backend: Backend) -> EngineBuilder {
        self.backend = backend;
        self
    }

    /// Sets the resource budgets every run is governed by.
    pub fn limits(mut self, limits: Limits) -> EngineBuilder {
        self.limits = limits;
        self
    }

    /// Enables or disables the lexical-address resolution prepass
    /// (`units_compile::resolve_program`). On by default.
    pub fn resolution(mut self, on: bool) -> EngineBuilder {
        self.resolve = Some(on);
        self
    }

    /// Sets the checking worker-pool size. Defaults to the available
    /// parallelism (capped at 8); the `UNITS_ENGINE_THREADS` environment
    /// variable overrides both.
    pub fn threads(mut self, threads: usize) -> EngineBuilder {
        self.threads = Some(threads.max(1));
        self
    }

    /// Sets what runs do about failure — retries and reference-reducer
    /// fallback (default: [`FallbackPolicy::none`], report as-is).
    pub fn on_failure(mut self, policy: FallbackPolicy) -> EngineBuilder {
        self.policy = policy;
        self
    }

    /// Arms a copy of `plane` inside every batch worker job — covering
    /// the job's whole parse → check → resolve → lower pipeline —
    /// reseeded with `plane.seed() ^ job-index` so each job's fault
    /// schedule is deterministic regardless of which worker thread runs
    /// it. (The thread-local plane armed by
    /// [`units_trace::faults::arm`] only covers the calling thread;
    /// this is how a chaos harness reaches the pool.) A no-op schedule
    /// in builds without the `faults` feature.
    pub fn worker_faults(mut self, plane: FaultPlane) -> EngineBuilder {
        self.worker_faults = Some(plane);
        self
    }

    /// Points the engine at a persistent on-disk artifact cache
    /// (`units_store::Store`). Loads that miss the in-memory cache probe
    /// the directory before parsing; fresh admissions are written back
    /// through, so a later engine — including one in a different
    /// process — warm-starts with zero re-parses. Every store failure
    /// (unusable directory, corrupt entry, contended write lock) degrades
    /// to the in-memory-only behaviour of an engine built without this
    /// call; it never surfaces as an [`Error`].
    pub fn cache_dir(mut self, dir: impl Into<PathBuf>) -> EngineBuilder {
        self.cache_dir = Some(dir.into());
        self
    }

    /// Builds the engine.
    pub fn build(self) -> Engine {
        let threads = match std::env::var("UNITS_ENGINE_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
        {
            Some(n) if n >= 1 => n,
            _ => self.threads.unwrap_or_else(default_threads),
        };
        let opts = CheckOptions { level: self.level, strictness: self.strictness };
        let resolve = self.resolve.unwrap_or(true);
        let store = self.cache_dir.as_ref().and_then(|dir| {
            // The fingerprint binds on-disk entries to this engine
            // configuration — the same ingredients `source_key` folds in,
            // minus the source itself. (`DefaultHasher::new` is keyless
            // and deterministic, so fingerprints agree across processes
            // of the same build; cross-build skew is caught by the
            // store's version stamp.)
            let mut h = DefaultHasher::new();
            opts.hash(&mut h);
            resolve.hash(&mut h);
            match Store::open(dir, h.finish()) {
                Ok(store) => {
                    if !store.writable() {
                        units_trace::emit(
                            units_trace::Phase::Engine,
                            "engine/store_readonly",
                            None,
                            || format!("{}: write lock held elsewhere", dir.display()),
                            &[],
                        );
                    }
                    Some(store)
                }
                Err(e) => {
                    // Unusable directory: warn and run in-memory-only.
                    units_trace::emit(
                        units_trace::Phase::Engine,
                        "engine/store_unavailable",
                        None,
                        || format!("{}: {e}", dir.display()),
                        &[("engine/store_unavailable", 1)],
                    );
                    None
                }
            }
        });
        Engine {
            inner: Arc::new(EngineInner {
                opts,
                backend: self.backend,
                limits: self.limits,
                resolve,
                threads,
                policy: self.policy,
                worker_faults: self.worker_faults,
                store,
                cache: Mutex::new(Cache::default()),
                metrics: EngineMetrics::default(),
                recovery: Mutex::new(None),
                flight: Mutex::new(None),
            }),
        }
    }
}

fn default_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get().min(8)).unwrap_or(1)
}

/// A session that checks, caches, and runs programs.
///
/// An `Engine` is a cheap handle onto shared session state: cloning it
/// clones an `Arc`, and every clone sees the same artifact cache,
/// metrics plane, recovery record, and policy. Engines are
/// `Send + Sync`: the cache, metrics, and recovery records all sit
/// behind locks or atomics, and the `Arc`-backed kernel terms let one
/// cached artifact serve loads and runs from any number of threads
/// simultaneously (the §4.1.6 "one copy of the code", process-wide).
/// See the [module documentation](self) for the full story.
#[derive(Debug, Clone)]
pub struct Engine {
    inner: Arc<EngineInner>,
}

/// The shared state behind every [`Engine`] clone and (weakly) behind
/// every [`Loaded`] handle.
#[derive(Debug)]
struct EngineInner {
    opts: CheckOptions,
    backend: Backend,
    limits: Limits,
    resolve: bool,
    threads: usize,
    policy: FallbackPolicy,
    worker_faults: Option<FaultPlane>,
    /// The persistent artifact store, when the builder was given a
    /// `cache_dir` and the directory was usable.
    store: Option<Store>,
    cache: Mutex<Cache>,
    metrics: EngineMetrics,
    recovery: Mutex<Option<Recovery>>,
    flight: Mutex<Option<FlightDump>>,
}

impl Default for Engine {
    fn default() -> Engine {
        Engine::builder().build()
    }
}

/// Renders a caught panic payload (`&str` and `String` are what `panic!`
/// produces; anything else is opaque).
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    match payload.downcast_ref::<&str>() {
        Some(s) => (*s).to_string(),
        None => match payload.downcast_ref::<String>() {
            Some(s) => s.clone(),
            None => "non-string panic payload".to_string(),
        },
    }
}

/// Runs `f` behind an unwind boundary: a panic anywhere in the pipeline
/// becomes [`Error::Internal`] naming the stage, and the session stays
/// usable.
fn guard<R>(stage: &'static str, f: impl FnOnce() -> Result<R, Error>) -> Result<R, Error> {
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(result) => result,
        Err(payload) => {
            units_trace::count("engine/caught_panics", 1);
            Err(Error::Internal { stage, message: panic_message(payload) })
        }
    }
}

impl Engine {
    /// Starts configuring an engine.
    pub fn builder() -> EngineBuilder {
        EngineBuilder::default()
    }

    /// An engine with all defaults (untyped, compiled backend, no limits).
    pub fn new() -> Engine {
        Engine::default()
    }

    /// The level programs are checked at.
    pub fn level(&self) -> Level {
        self.inner.opts.level
    }

    /// The default backend [`Loaded::run`] uses.
    pub fn backend(&self) -> Backend {
        self.inner.backend
    }

    /// The resource budgets every run is governed by.
    pub fn limits(&self) -> Limits {
        self.inner.limits
    }

    /// The checking worker-pool size.
    pub fn threads(&self) -> usize {
        self.inner.threads
    }

    /// The failure-handling policy every run is governed by.
    pub fn fallback_policy(&self) -> FallbackPolicy {
        self.inner.policy
    }

    /// The [`Recovery`] record of the most recent run whose primary
    /// attempt failed — `None` when the most recent run succeeded
    /// outright (or nothing has run yet).
    pub fn last_recovery(&self) -> Option<Recovery> {
        self.inner.recovery.lock().unwrap().clone()
    }

    /// Cache hit/miss counters and current entry count.
    pub fn cache_stats(&self) -> CacheStats {
        CacheStats {
            hits: self.inner.metrics.source_hits.load(Relaxed)
                + self.inner.metrics.term_hits.load(Relaxed),
            misses: self.inner.metrics.misses.load(Relaxed),
            entries: self.inner.cache_entries(),
        }
    }

    /// A structured snapshot of the engine's always-on metrics plane:
    /// cache behaviour per key kind, worker-pool activity, recovery
    /// actions by policy stage, run totals with fuel and store-cell
    /// high-water marks, and invoke latency percentiles (p50/p99 from
    /// log₂-ns histogram buckets). Available in every build — only the
    /// flight-dump count needs the `trace` feature to be nonzero.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.inner.metrics.snapshot(self.inner.cache_entries())
    }

    /// Zeroes the metrics plane. Cache contents, recovery records, and
    /// flight dumps are untouched — this resets the counters, not the
    /// session.
    pub fn metrics_reset(&self) {
        self.inner.metrics.reset();
    }

    /// The most recent flight-recorder post-mortem this engine captured
    /// (when a run surfaced [`Error::Internal`], an injected fault, or
    /// [`Error::ResourceExhausted`]). Always `None` without the `trace`
    /// feature — the recorder compiles to a no-op there.
    pub fn last_flight_dump(&self) -> Option<FlightDump> {
        self.inner.flight.lock().unwrap().clone()
    }

    /// Drops a loaded program's artifact from the session cache, so the
    /// next load of the same source checks and resolves from scratch.
    /// Returns whether anything was actually removed (a second eviction
    /// of the same handle, or of one the engine already evicted after a
    /// panic, is a no-op).
    ///
    /// The handle itself — and every clone of it — keeps working: it
    /// owns the artifact by `Arc`, so in-flight runs finish on the copy
    /// they captured. This is the primitive a hot-swapping server uses
    /// to retire a replaced plug-in.
    pub fn evict(&self, loaded: &Loaded) -> bool {
        self.inner.evict_artifact(&loaded.artifact)
    }

    /// Wraps an artifact in an owned handle tied (weakly) to this session.
    fn handle(&self, artifact: Arc<Artifact>) -> Loaded {
        Loaded { engine: Arc::downgrade(&self.inner), artifact }
    }

    /// Parses, checks, and resolves `source` — or retrieves the cached
    /// artifact if an identical (or alpha-equal) program was loaded
    /// before under the same options.
    ///
    /// # Errors
    ///
    /// [`Error::Parse`] or [`Error::Check`]; never a runtime error
    /// (nothing is evaluated yet). A panic inside parsing, checking, or
    /// resolution is caught here and surfaces as [`Error::Internal`].
    pub fn load(&self, source: &str) -> Result<Loaded, Error> {
        recorder::ensure(recorder::DEFAULT_CAPACITY);
        let result = guard("load", || self.inner.load_uncached(source));
        match result {
            Ok(artifact) => Ok(self.handle(artifact)),
            Err(err) => {
                self.inner.flight_on_fault(&err);
                Err(err)
            }
        }
    }

    /// Wraps an already-built expression (no parsing; still checked,
    /// resolved, and cached by term).
    ///
    /// # Errors
    ///
    /// [`Error::Check`] when the expression does not check.
    pub fn load_expr(&self, expr: Expr) -> Result<Loaded, Error> {
        recorder::ensure(recorder::DEFAULT_CAPACITY);
        let inner = &self.inner;
        let result = guard("load", || {
            // No source text, so key the source map by the term hash too.
            let tkey = inner.term_key(&expr);
            if let Some(artifact) = inner.term_lookup(tkey, tkey, &expr) {
                inner.record_hit(false);
                return Ok(artifact);
            }
            inner.admit(tkey, tkey, expr, None)
        });
        match result {
            Ok(artifact) => Ok(self.handle(artifact)),
            Err(err) => {
                inner.flight_on_fault(&err);
                Err(err)
            }
        }
    }

    /// [`load`](Engine::load) followed by [`Loaded::run`]: the one-call
    /// parse → check → evaluate pipeline.
    ///
    /// # Errors
    ///
    /// Any load or runtime error.
    pub fn invoke(&self, source: &str) -> Result<Outcome, Error> {
        self.load(source)?.run()
    }

    /// Loads many independent sources, running the full
    /// parse → check → resolve (→ lower, on the bytecode backend)
    /// pipeline for cache misses in parallel on the engine's worker
    /// pool. Accepts anything iterable over string-like items — a
    /// `&[&str]`, a `Vec<String>`, an iterator of `String`s — and
    /// returns one `Result<Loaded, Error>` per source, in input order;
    /// workers admit `Arc`-shared artifacts into the same cache as
    /// [`Engine::load`], exactly once per distinct program — nothing is
    /// parsed twice.
    ///
    /// With one thread (or one job) this degenerates to sequential
    /// [`Engine::load`] calls — the `UNITS_ENGINE_THREADS=1` determinism
    /// mode.
    ///
    /// ```
    /// use units::{Engine, Observation};
    ///
    /// let engine = Engine::new();
    /// let sources: Vec<String> = (1..=3)
    ///     .map(|n| format!("(invoke (unit (import) (export) (init {n})))"))
    ///     .collect();
    /// // One result per source, in input order.
    /// let results: Vec<Result<units::Loaded, units::Error>> =
    ///     engine.load_batch(&sources);
    /// assert_eq!(results.len(), 3);
    /// assert_eq!(results[2].as_ref().unwrap().run()?.value, Observation::Int(3));
    /// # Ok::<(), units::Error>(())
    /// ```
    pub fn load_batch<I>(&self, sources: I) -> Vec<Result<Loaded, Error>>
    where
        I: IntoIterator,
        I::Item: AsRef<str>,
    {
        let owned: Vec<I::Item> = sources.into_iter().collect();
        let refs: Vec<&str> = owned.iter().map(AsRef::as_ref).collect();
        self.load_batch_refs(&refs)
    }

    /// The monomorphic batch pipeline behind [`Engine::load_batch`].
    fn load_batch_refs(&self, sources: &[&str]) -> Vec<Result<Loaded, Error>> {
        recorder::ensure(recorder::DEFAULT_CAPACITY);
        let inner = &self.inner;
        // One job per distinct uncached source; repeats and warm entries
        // resolve as plain cache hits in the collection pass below.
        let mut seen = HashSet::new();
        let jobs: Vec<(usize, &str)> = {
            let cache = inner.cache.lock().unwrap();
            sources
                .iter()
                .enumerate()
                .filter(|(_, s)| {
                    let key = inner.source_key(s);
                    seen.insert(key) && !cache.by_source.contains_key(&key)
                })
                .map(|(i, s)| (i, *s))
                .collect()
        };
        let workers = inner.threads.min(jobs.len());
        if workers <= 1 {
            return sources.iter().map(|s| self.load(s)).collect();
        }
        inner.metrics.note_batch(jobs.len() as u64, workers as u64);
        units_trace::count("engine/pool_jobs", jobs.len() as u64);
        units_trace::count("engine/pool_queue_depth", jobs.len() as u64);
        units_trace::count("engine/pool_workers", workers as u64);
        let queue = Mutex::new(jobs);
        let done: Mutex<HashMap<usize, Result<Arc<Artifact>, Error>>> =
            Mutex::new(HashMap::new());
        let worker_faults = &inner.worker_faults;
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let Some((idx, src)) = queue.lock().unwrap().pop() else { break };
                    if let Some(plane) = worker_faults {
                        // Reseed per job, not per worker: the schedule
                        // each source sees is then a function of the
                        // job alone, not of thread scheduling.
                        units_trace::faults::arm(
                            plane.clone().reseeded(plane.seed() ^ (idx as u64 + 1)),
                        );
                    }
                    // The unwind boundary lives *inside* the worker
                    // loop: a panicking pipeline fails one job, not the
                    // pool (and never poisons the queue/result locks,
                    // which are released while the pipeline runs).
                    let result = guard("batch-load", || {
                        let artifact = inner.load_uncached(src)?;
                        if inner.backend == Backend::Bytecode {
                            // Lower eagerly on the worker so the batch
                            // hands back run-ready artifacts; the
                            // `OnceLock` dedupes against any concurrent
                            // run lowering the same chunk.
                            let _ = artifact.chunk();
                        }
                        Ok(artifact)
                    });
                    units_trace::faults::disarm();
                    done.lock().unwrap().insert(idx, result);
                });
            }
        });
        let mut done = done.into_inner().unwrap();
        sources
            .iter()
            .enumerate()
            .map(|(i, source)| match done.remove(&i) {
                Some(Ok(artifact)) => Ok(self.handle(artifact)),
                Some(Err(err)) => {
                    inner.flight_on_fault(&err);
                    Err(err)
                }
                // A duplicate of some job, or cached before the batch
                // started: a plain (hitting) load.
                None => self.load(source),
            })
            .collect()
    }

    /// Loads every entry of an [`Archive`] (in name order) through
    /// [`Engine::load_batch`]. Returns `(name, result)` pairs — one per
    /// archive entry, in the archive's name order.
    pub fn load_archive(&self, archive: &Archive) -> Vec<(String, Result<Loaded, Error>)> {
        // `names()` comes from the archive's own key set, so every
        // lookup succeeds; `filter_map` keeps the name/source pairing
        // aligned without an `expect` on that invariant.
        let (names, sources): (Vec<&str>, Vec<&str>) = archive
            .names()
            .into_iter()
            .filter_map(|n| archive.get(n).map(|s| (n, s)))
            .unzip();
        let loaded = self.load_batch_refs(&sources);
        names.into_iter().map(String::from).zip(loaded).collect()
    }
}

impl EngineInner {
    /// Captures a flight dump when `err` indicts the machinery rather
    /// than the program (the same classification recovery uses), naming
    /// the failure in the dump's reason line. Set `UNITS_FLIGHT_DUMP=
    /// <path>` to also write the JSON lines to a file, best-effort.
    fn flight_on_fault(&self, err: &Error) {
        let machinery = err.as_internal().is_some()
            || err.is_injected()
            || err.as_resource_exhausted().is_some();
        if !machinery {
            return;
        }
        let Some(dump) = recorder::dump(&err.to_string()) else { return };
        bump(&self.metrics.flight_dumps);
        units_trace::count("engine/flight_dumps", 1);
        if let Ok(path) = std::env::var("UNITS_FLIGHT_DUMP") {
            if !path.is_empty() {
                if let Err(e) = std::fs::write(&path, &dump.json_lines) {
                    // Best-effort, but never silent: a post-mortem that
                    // failed to land on disk is itself an observable
                    // event (the in-memory dump below still survives).
                    bump(&self.metrics.flight_dump_failures);
                    units_trace::emit(
                        units_trace::Phase::Engine,
                        "engine/flight_dump_failed",
                        None,
                        || format!("{path}: {e}"),
                        &[("engine/flight_dump_failures", 1)],
                    );
                }
            }
        }
        *self.flight.lock().unwrap() = Some(dump);
    }

    fn cache_entries(&self) -> usize {
        self.cache.lock().unwrap().by_term.values().map(Vec::len).sum()
    }

    fn source_key(&self, source: &str) -> u64 {
        let mut h = DefaultHasher::new();
        source.hash(&mut h);
        self.opts.hash(&mut h);
        self.resolve.hash(&mut h);
        h.finish()
    }

    fn term_key(&self, expr: &Expr) -> u64 {
        let mut h = DefaultHasher::new();
        alpha_hash(expr).hash(&mut h);
        self.opts.hash(&mut h);
        self.resolve.hash(&mut h);
        h.finish()
    }

    /// One cache hit, attributed to its key kind: `source` for the
    /// raw-source fast path, else the α-invariant term index.
    fn record_hit(&self, source: bool) {
        bump(if source { &self.metrics.source_hits } else { &self.metrics.term_hits });
        units_trace::count("engine/cache_hit", 1);
    }

    fn record_miss(&self) {
        bump(&self.metrics.misses);
        units_trace::count("engine/cache_miss", 1);
    }

    /// Drops `artifact` from both cache maps. A run that panicked says
    /// nothing about how far it got before dying, so the artifact it
    /// was running is invalidated rather than trusted on the next load;
    /// a server retiring a swapped-out plug-in uses the same path.
    /// Returns whether anything was removed.
    fn evict_artifact(&self, artifact: &Arc<Artifact>) -> bool {
        let mut cache = self.cache.lock().unwrap();
        let before: usize = cache.by_term.values().map(Vec::len).sum();
        cache.by_source.retain(|_, a| !Arc::ptr_eq(a, artifact));
        for bucket in cache.by_term.values_mut() {
            bucket.retain(|a| !Arc::ptr_eq(a, artifact));
        }
        cache.by_term.retain(|_, bucket| !bucket.is_empty());
        let removed = cache.by_term.values().map(Vec::len).sum::<usize>() < before;
        drop(cache);
        if removed {
            bump(&self.metrics.evictions);
            units_trace::count("engine/cache_evict", 1);
        }
        removed
    }

    /// The cached artifact alpha-equal to `expr`, if any, registering the
    /// source key as a fast path for next time.
    fn term_lookup(&self, skey: u64, tkey: u64, expr: &Expr) -> Option<Arc<Artifact>> {
        let mut cache = self.cache.lock().unwrap();
        let found = cache
            .by_term
            .get(&tkey)?
            .iter()
            .find(|a| alpha_eq(&a.expr, expr))
            .cloned()?;
        cache.by_source.insert(skey, found.clone());
        Some(found)
    }

    /// Checks and resolves `expr` from scratch, caching the artifact
    /// under both keys.
    ///
    /// Checking and resolution run outside the cache lock — they are the
    /// expensive part and perfectly parallel. Under the lock the term
    /// bucket is re-checked, so when two threads race on alpha-equal
    /// programs exactly one artifact is admitted and the loser shares it
    /// (counted as a term hit, because that is what it observed).
    fn admit(
        &self,
        skey: u64,
        tkey: u64,
        expr: Expr,
        source: Option<&str>,
    ) -> Result<Arc<Artifact>, Error> {
        let ty = check_program(&expr, self.opts)?;
        let resolved = if self.resolve { Some(resolve_program(&expr)) } else { None };
        let mut cache = self.cache.lock().unwrap();
        if let Some(found) = cache
            .by_term
            .get(&tkey)
            .and_then(|b| b.iter().find(|a| alpha_eq(&a.expr, &expr)).cloned())
        {
            cache.by_source.insert(skey, found.clone());
            drop(cache);
            self.record_hit(false);
            return Ok(found);
        }
        let artifact = Arc::new(Artifact { expr, ty, resolved, chunk: OnceLock::new() });
        cache.by_source.insert(skey, artifact.clone());
        cache.by_term.entry(tkey).or_default().push(artifact.clone());
        drop(cache);
        self.record_miss();
        self.store_write(skey, source, &artifact);
        Ok(artifact)
    }

    /// Inserts an artifact rebuilt from a verified store entry, racing
    /// fairly against concurrent in-memory admissions of the same term
    /// (the loser shares the winner, exactly like [`EngineInner::admit`]).
    fn admit_prebuilt(&self, skey: u64, tkey: u64, artifact: Artifact) -> Arc<Artifact> {
        let mut cache = self.cache.lock().unwrap();
        if let Some(found) = cache
            .by_term
            .get(&tkey)
            .and_then(|b| b.iter().find(|a| alpha_eq(&a.expr, &artifact.expr)).cloned())
        {
            cache.by_source.insert(skey, found.clone());
            drop(cache);
            self.record_hit(false);
            return found;
        }
        let artifact = Arc::new(artifact);
        cache.by_source.insert(skey, artifact.clone());
        cache.by_term.entry(tkey).or_default().push(artifact.clone());
        artifact
    }

    /// Probes the persistent store for `source`, admitting a verified
    /// entry into the in-memory cache. `None` on any miss — including
    /// corruption, which is quarantined and counted but never an error.
    fn store_probe(&self, skey: u64, source: &str) -> Option<Arc<Artifact>> {
        let store = self.store.as_ref()?;
        match store.read(skey, source) {
            Lookup::Hit(entry) => {
                bump(&self.metrics.store_hits);
                units_trace::count("engine/store_hit", 1);
                let entry = *entry;
                let chunk = OnceLock::new();
                if let Some(lowered) = entry.chunk {
                    let _ = chunk.set(Arc::new(lowered));
                }
                let artifact =
                    Artifact { expr: entry.expr, ty: entry.ty, resolved: entry.resolved, chunk };
                let tkey = self.term_key(&artifact.expr);
                Some(self.admit_prebuilt(skey, tkey, artifact))
            }
            Lookup::Miss => {
                bump(&self.metrics.store_misses);
                units_trace::count("engine/store_miss", 1);
                None
            }
            Lookup::Corrupt => {
                // Quarantined by the store; for the engine it is a miss
                // with a cause worth counting separately.
                bump(&self.metrics.store_corrupt);
                bump(&self.metrics.store_misses);
                units_trace::count("engine/store_corrupt", 1);
                None
            }
        }
    }

    /// Writes a freshly admitted artifact through to the persistent
    /// store, best-effort. Only the source-keyed path writes
    /// ([`Engine::load_expr`] has no source text to verify against), and
    /// on the bytecode backend the chunk is lowered first so a
    /// warm-started process gets run-ready artifacts.
    fn store_write(&self, skey: u64, source: Option<&str>, artifact: &Arc<Artifact>) {
        let (Some(store), Some(source)) = (self.store.as_ref(), source) else { return };
        if !store.writable() {
            return;
        }
        if self.backend == Backend::Bytecode {
            let _ = artifact.chunk();
        }
        let entry = units_store::Entry {
            expr: artifact.expr.clone(),
            ty: artifact.ty.clone(),
            resolved: artifact.resolved.clone(),
            chunk: artifact.chunk.get().map(|c| (**c).clone()),
        };
        if store.write(skey, source, &entry) {
            bump(&self.metrics.store_writes);
            units_trace::count("engine/store_write", 1);
        }
    }

    /// The un-guarded load pipeline: cache probes, then
    /// parse → check → resolve → admit. Shared by [`Engine::load`] and
    /// the batch workers — both run the *same* code, the only difference
    /// is which unwind boundary and fault plane wraps it.
    fn load_uncached(&self, source: &str) -> Result<Arc<Artifact>, Error> {
        let skey = self.source_key(source);
        if let Some(artifact) = self.cache.lock().unwrap().by_source.get(&skey).cloned() {
            self.record_hit(true);
            return Ok(artifact);
        }
        // The persistent store sits between the in-memory probe and the
        // parser: a verified disk entry skips parse, check, resolve, and
        // (when the writer lowered) the bytecode lowering too.
        if let Some(artifact) = self.store_probe(skey, source) {
            return Ok(artifact);
        }
        bump(&self.metrics.parses);
        let expr = parse_file(source)?;
        let tkey = self.term_key(&expr);
        if let Some(artifact) = self.term_lookup(skey, tkey, &expr) {
            self.record_hit(false);
            return Ok(artifact);
        }
        self.admit(skey, tkey, expr, Some(source))
    }

    /// One governed run of `artifact`: unwind boundary, recovery policy,
    /// latency accounting. `limits` is the budget for this run — the
    /// session default from [`Loaded::run_on`], or a per-request
    /// override from [`Loaded::run_with`].
    fn run_artifact(
        &self,
        artifact: &Arc<Artifact>,
        backend: Backend,
        limits: Limits,
    ) -> Result<Outcome, Error> {
        // Trace builds keep a flight-recorder ring rolling on the run
        // path so a failure below can produce a post-mortem.
        recorder::ensure(recorder::DEFAULT_CAPACITY);
        let start = Instant::now();
        *self.recovery.lock().unwrap() = None;
        let result = match self.run_raw(artifact, backend, limits) {
            Ok(outcome) => Ok(outcome),
            Err(err) => self.recover(artifact, backend, limits, err),
        };
        // Latency covers the whole journey, recovery included — that is
        // what a caller of `run_on` actually waited.
        self.metrics.note_run(start.elapsed(), result.is_ok());
        result
    }

    /// One un-recovered run: the three backends behind the unwind boundary.
    fn run_raw(
        &self,
        artifact: &Arc<Artifact>,
        backend: Backend,
        limits: Limits,
    ) -> Result<Outcome, Error> {
        guard("run", || match backend {
            Backend::Compiled => {
                let _timer = units_trace::time("eval");
                let mut machine = Machine::with_limits(limits);
                let expr = artifact.resolved.as_ref().unwrap_or(&artifact.expr);
                // Account fuel and cells before `?` so even failed runs
                // (e.g. budget exhaustion) land in the metrics plane.
                let value = evaluate_program(expr, &mut machine);
                self.note_machine(&machine);
                let value = value?;
                Ok(Outcome { value: observe_value(&value), output: machine.take_output() })
            }
            Backend::Bytecode => {
                let chunk = artifact.chunk();
                let _timer = units_trace::time("eval");
                let mut machine = Machine::with_limits(limits);
                let value = execute(&chunk, &mut machine);
                self.note_machine(&machine);
                let value = value?;
                Ok(Outcome { value: observe_value(&value), output: machine.take_output() })
            }
            Backend::Reducer => {
                let mut reducer = Reducer::with_limits(limits);
                let value = reducer.reduce_to_value(&artifact.expr);
                self.note_machine(&reducer.machine);
                let value = value?;
                Ok(Outcome { value: observe_expr(&value), output: reducer.machine.take_output() })
            }
        })
    }

    /// Folds one finished machine's fuel and store-cell usage into the
    /// engine metrics (and the legacy trace counter).
    fn note_machine(&self, machine: &Machine) {
        units_trace::count("engine/fuel_used", machine.steps_taken());
        self.metrics.note_machine(machine.steps_taken(), machine.cells_allocated());
    }

    /// The failure path of [`run_artifact`](EngineInner::run_artifact):
    /// evict the artifact after a panic, then apply the engine's
    /// [`FallbackPolicy`] — bounded fuel-escalation re-runs when fuel
    /// ran out, then a clean reference-reducer re-run for
    /// compiled-backend faults — recording the journey for
    /// [`Engine::last_recovery`]. `limits` is the budget the failed run
    /// was governed by; retries and fallbacks stay within it (except
    /// for the deliberate fuel escalation).
    fn recover(
        &self,
        artifact: &Arc<Artifact>,
        backend: Backend,
        limits: Limits,
        mut err: Error,
    ) -> Result<Outcome, Error> {
        if err.as_internal().is_some() {
            self.evict_artifact(artifact);
        }
        // Post-mortem first, while the ring still ends at the failure:
        // the retries below will append their own (re-run) events.
        self.flight_on_fault(&err);
        let policy = self.policy;
        let mut recovery =
            Recovery { failure: err.to_string(), retries: 0, fell_back: false, divergence: None };
        // Escalating fuel cures a program that merely outgrew its
        // budget; a genuinely diverging one fails again, still typed.
        if policy.fuel_retries > 0 {
            if let Some((Resource::Fuel, limit)) = err.as_resource_exhausted() {
                let mut fuel = limit;
                while recovery.retries < policy.fuel_retries {
                    recovery.retries += 1;
                    fuel = fuel.saturating_mul(policy.fuel_factor);
                    crate::metrics::bump(&self.metrics.fuel_retries);
                    units_trace::count("engine/fuel_retries", 1);
                    let mut escalated = limits;
                    escalated.fuel = Some(fuel);
                    match self.run_raw(artifact, backend, escalated) {
                        Ok(outcome) => {
                            crate::metrics::bump(&self.metrics.recovered_runs);
                            *self.recovery.lock().unwrap() = Some(recovery);
                            return Ok(outcome);
                        }
                        Err(e) => {
                            let still_fuel =
                                matches!(e.as_resource_exhausted(), Some((Resource::Fuel, _)));
                            err = e;
                            recovery.failure = err.to_string();
                            if !still_fuel {
                                break;
                            }
                        }
                    }
                }
            }
        }
        // Graceful degradation, only for failures that indict the
        // backend (caught panic, injected fault, exhausted budget) —
        // a program's own deterministic error is its answer, and
        // re-running could not change it.
        let backend_fault = err.as_internal().is_some()
            || err.is_injected()
            || err.as_resource_exhausted().is_some();
        if policy.reference_fallback && backend != Backend::Reducer && backend_fault {
            crate::metrics::bump(&self.metrics.fallbacks);
            units_trace::count("engine/fallbacks", 1);
            // The fault plane stays suspended for the re-run: recovery
            // must not itself be a fault target.
            let fallback = units_trace::faults::pause(|| {
                self.run_raw(artifact, Backend::Reducer, limits)
            });
            if let Ok(outcome) = fallback {
                crate::metrics::bump(&self.metrics.recovered_runs);
                recovery.fell_back = true;
                recovery.divergence = self.diagnose(artifact, &policy, backend, limits);
                *self.recovery.lock().unwrap() = Some(recovery);
                return Ok(outcome);
            }
        }
        *self.recovery.lock().unwrap() = Some(recovery);
        Err(err)
    }

    /// Re-runs the program differentially and renders where the
    /// backends part ways — the "report both verdicts" half of a
    /// fallback. `None` when the policy does not ask for it or the
    /// build lacks the `trace` feature (event capture is how the
    /// backends are compared).
    #[cfg_attr(not(feature = "trace"), allow(clippy::unused_self))]
    fn diagnose(
        &self,
        artifact: &Arc<Artifact>,
        policy: &FallbackPolicy,
        backend: Backend,
        limits: Limits,
    ) -> Option<String> {
        #[cfg(feature = "trace")]
        if policy.diagnose {
            let report = units_trace::faults::pause(|| {
                catch_unwind(AssertUnwindSafe(|| {
                    crate::observe::diagnose_divergence_with(backend, |b| {
                        self.run_raw(artifact, b, limits)
                    })
                    .to_string()
                }))
            });
            return Some(report.unwrap_or_else(|payload| {
                format!("diagnosis itself panicked: {}", panic_message(payload))
            }));
        }
        #[cfg(not(feature = "trace"))]
        let _ = (artifact, policy, backend, limits);
        None
    }
}

/// A checked, cached program — an owned, thread-safe handle, ready to
/// run under the engine's limits.
///
/// Produced by [`Engine::load`]. The handle owns the artifact
/// (`Arc`-shared with the session cache and every other load of the
/// same program) and holds the session by `Weak` reference, so it can
/// be cloned, stored, and sent across threads freely; it neither keeps
/// the engine alive nor borrows it. Running a handle whose engine has
/// been dropped fails with [`Error::SessionClosed`]; methods that only
/// inspect the artifact keep working forever.
#[derive(Debug, Clone)]
pub struct Loaded {
    engine: Weak<EngineInner>,
    artifact: Arc<Artifact>,
}

/// The pre-0.3 spelling of [`Loaded`], when the handle borrowed its
/// engine for `'e`. The handle is owned now; the lifetime parameter is
/// accepted and ignored.
#[deprecated(since = "0.3.0", note = "`Loaded` is owned now; drop the lifetime parameter")]
pub type LoadedRef<'e> = Loaded;

impl Loaded {
    /// The live session behind this handle, or [`Error::SessionClosed`].
    fn session(&self) -> Result<Arc<EngineInner>, Error> {
        self.engine.upgrade().ok_or(Error::SessionClosed)
    }

    /// Whether the engine behind this handle is still alive. Artifact
    /// inspection works either way; running needs a live session.
    pub fn session_alive(&self) -> bool {
        self.engine.strong_count() > 0
    }

    /// The program's type at typed levels (`None` at UNITd).
    pub fn ty(&self) -> Option<&Ty> {
        self.artifact.ty.as_ref()
    }

    /// The parsed kernel term.
    pub fn expr(&self) -> &Expr {
        &self.artifact.expr
    }

    /// The program's flat-bytecode listing — opcode, operands, and
    /// const-pool references, one instruction per line — lowering (and
    /// caching) the chunk if no bytecode run has happened yet.
    pub fn disassemble(&self) -> String {
        units_runtime::disassemble(&self.artifact.chunk())
    }

    /// [`Loaded::disassemble`] annotated with the bytecode profiler's
    /// per-op execution counts and fuel attribution. Counts accumulate
    /// across bytecode runs of this (cached, shared) chunk in `trace`
    /// builds; elsewhere the header explains they are unavailable.
    pub fn disassemble_profiled(&self) -> String {
        units_runtime::disassemble_profiled(&self.artifact.chunk())
    }

    /// A structured snapshot of the chunk's profiler counters — totals,
    /// per-op counts, and the hottest mnemonics.
    pub fn chunk_profile(&self) -> ChunkProfile {
        ChunkProfile::capture(&self.artifact.chunk())
    }

    /// Zeroes the chunk's profiler counters (the chunk is shared by
    /// every load of this program, so counts otherwise accumulate).
    pub fn profile_reset(&self) {
        self.artifact.chunk().profile.reset();
    }

    /// Runs on the engine's default backend.
    ///
    /// # Errors
    ///
    /// Any runtime error; budget exhaustion surfaces as
    /// [`Error::ResourceExhausted`], and a dropped engine as
    /// [`Error::SessionClosed`].
    pub fn run(&self) -> Result<Outcome, Error> {
        let inner = self.session()?;
        let backend = inner.backend;
        let limits = inner.limits;
        inner.run_artifact(&self.artifact, backend, limits)
    }

    /// Runs on a specific backend under the engine's [`Limits`].
    ///
    /// The compiled backend evaluates the cached resolved term in place —
    /// every instantiation shares the one compiled copy (§4.1.6); the
    /// reducer works on the substitution semantics of Fig. 11.
    ///
    /// A panic anywhere in evaluation is caught here and surfaces as
    /// [`Error::Internal`] (the artifact is also dropped from the
    /// cache). When the engine's [`FallbackPolicy`] allows it, a failed
    /// run is retried with escalated fuel and/or re-run on the
    /// reference reducer before the error is reported;
    /// [`Engine::last_recovery`] tells what happened.
    ///
    /// # Errors
    ///
    /// As for [`Loaded::run`].
    pub fn run_on(&self, backend: Backend) -> Result<Outcome, Error> {
        let inner = self.session()?;
        let limits = inner.limits;
        inner.run_artifact(&self.artifact, backend, limits)
    }

    /// Runs on a specific backend under *these* [`Limits`] instead of
    /// the session defaults — the per-request budget override a
    /// multi-tenant server applies after admission control. The full
    /// recovery machinery (fuel retries, reference fallback) operates
    /// relative to the given limits.
    ///
    /// # Errors
    ///
    /// As for [`Loaded::run`].
    pub fn run_with(&self, backend: Backend, limits: Limits) -> Result<Outcome, Error> {
        let inner = self.session()?;
        inner.run_artifact(&self.artifact, backend, limits)
    }

    /// Runs on *all three* backends and asserts they agree — the
    /// executable form of the paper's implementation-correctness claim,
    /// under the engine's limits and cache. Returns the common outcome.
    ///
    /// # Errors
    ///
    /// When every backend fails, the compiled backend's error (the
    /// program's own answer on the default semantics).
    ///
    /// # Panics
    ///
    /// Panics when any backend disagrees with the compiled tree-walker —
    /// that is a bug in this repository, not in the program.
    pub fn run_differential(&self) -> Result<Outcome, Error> {
        let compiled = self.run_on(Backend::Compiled);
        for backend in [Backend::Bytecode, Backend::Reducer] {
            let other = self.run_on(backend);
            match (&compiled, &other) {
                (Ok(a), Ok(b)) if a != b => {
                    panic!("backends disagree: Compiled={a:?} vs {backend:?}={b:?}")
                }
                (Ok(a), Err(b)) => {
                    panic!("Compiled succeeded ({a:?}) but {backend:?} failed ({b})")
                }
                (Err(a), Ok(b)) => {
                    panic!("{backend:?} succeeded ({b:?}) but Compiled failed ({a})")
                }
                _ => {}
            }
        }
        compiled
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Observation;

    const SQUARE: &str = "(invoke (unit (import) (export)
        (define square (lambda (n) (* n n)))
        (init (square 12))))";

    #[test]
    fn invoke_runs_and_caches() {
        let engine = Engine::new();
        assert_eq!(engine.invoke(SQUARE).unwrap().value, Observation::Int(144));
        assert_eq!(engine.invoke(SQUARE).unwrap().value, Observation::Int(144));
        let stats = engine.cache_stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn alpha_renamed_sources_share_one_artifact() {
        let engine = Engine::new();
        engine.invoke(SQUARE).unwrap();
        let renamed = "(invoke (unit (import) (export)
            (define sq (lambda (m) (* m m)))
            (init (sq 12))))";
        assert_eq!(engine.invoke(renamed).unwrap().value, Observation::Int(144));
        let stats = engine.cache_stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn different_options_do_not_share_artifacts() {
        let untyped = Engine::new();
        untyped.invoke("(invoke (unit (import) (export) (init 5)))").unwrap();
        let typed = Engine::builder().level(Level::Constructed).build();
        let loaded = typed.load("(invoke (unit (import) (export) (init 5)))").unwrap();
        assert_eq!(loaded.ty(), Some(&Ty::Int));
        assert_eq!(typed.cache_stats().misses, 1);
        assert_eq!(typed.cache_stats().hits, 0);
    }

    #[test]
    fn check_errors_surface_before_running() {
        let err = Engine::new().invoke("(+ nope 1)").unwrap_err();
        assert!(err.as_check().is_some());
    }

    #[test]
    fn engine_clones_share_one_session() {
        let engine = Engine::new();
        let clone = engine.clone();
        engine.invoke(SQUARE).unwrap();
        clone.invoke(SQUARE).unwrap();
        // The second invoke hit the cache the first one populated.
        let stats = engine.cache_stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn handles_outlive_the_engine_but_cannot_run() {
        let engine = Engine::new();
        let loaded = engine.load(SQUARE).unwrap();
        assert!(loaded.session_alive());
        drop(engine);
        assert!(!loaded.session_alive());
        // Artifact inspection still works; running does not.
        assert!(loaded.ty().is_none());
        assert!(matches!(loaded.run(), Err(Error::SessionClosed)));
        assert!(matches!(loaded.run_on(Backend::Reducer), Err(Error::SessionClosed)));
    }

    #[test]
    fn run_with_overrides_the_session_limits_per_run() {
        let engine = Engine::builder()
            .strictness(Strictness::MzScheme)
            .limits(Limits::none().fuel(1_000_000))
            .build();
        let loaded = engine
            .load("(letrec ((define loop (lambda () (loop)))) (loop))")
            .unwrap();
        let err = loaded.run_with(Backend::Compiled, Limits::none().fuel(500)).unwrap_err();
        assert_eq!(err.as_resource_exhausted(), Some((Resource::Fuel, 500)));
        // The session default is untouched.
        assert_eq!(engine.limits().fuel, Some(1_000_000));
    }

    #[test]
    fn explicit_eviction_keeps_handles_usable() {
        let engine = Engine::new();
        let loaded = engine.load(SQUARE).unwrap();
        assert_eq!(engine.cache_stats().entries, 1);
        assert!(engine.evict(&loaded), "first eviction removes the artifact");
        assert!(!engine.evict(&loaded), "second eviction is a no-op");
        assert_eq!(engine.cache_stats().entries, 0);
        // The handle still owns the artifact and still runs.
        assert_eq!(loaded.run().unwrap().value, Observation::Int(144));
        // A fresh load re-admits (a miss, not a hit).
        engine.load(SQUARE).unwrap();
        assert_eq!(engine.cache_stats().misses, 2);
    }

    #[test]
    fn fuel_exhaustion_is_typed_on_all_backends() {
        let engine = Engine::builder()
            .strictness(Strictness::MzScheme)
            .limits(Limits::none().fuel(5_000))
            .build();
        let loaded = engine
            .load("(letrec ((define loop (lambda () (loop)))) (loop))")
            .unwrap();
        for backend in [Backend::Compiled, Backend::Reducer, Backend::Bytecode] {
            let err = loaded.run_on(backend).unwrap_err();
            assert_eq!(
                err.as_resource_exhausted(),
                Some((units_runtime::Resource::Fuel, 5_000)),
                "{backend:?}: {err}"
            );
        }
    }

    #[test]
    fn bytecode_backend_agrees_and_reuses_the_lowered_chunk() {
        let engine = Engine::new();
        let loaded = engine.load(SQUARE).unwrap();
        assert_eq!(loaded.run_on(Backend::Bytecode).unwrap().value, Observation::Int(144));
        let first = loaded.artifact.chunk();
        assert_eq!(loaded.run_on(Backend::Bytecode).unwrap().value, Observation::Int(144));
        assert!(Arc::ptr_eq(&first, &loaded.artifact.chunk()), "chunk lowered once per artifact");
    }

    #[test]
    fn run_differential_crosses_all_three_backends() {
        let engine = Engine::new();
        let loaded = engine.load(SQUARE).unwrap();
        assert_eq!(loaded.run_differential().unwrap().value, Observation::Int(144));
    }

    // Terminates, but only well past 5_000 steps on either backend.
    const SLOW_COUNTDOWN: &str =
        "(letrec ((define loop (lambda (n) (if (= n 0) 99 (loop (- n 1)))))) (loop 2000))";

    #[test]
    fn fuel_retries_escalate_until_the_run_fits() {
        let engine = Engine::builder()
            .strictness(Strictness::MzScheme)
            .limits(Limits::none().fuel(5_000))
            .on_failure(FallbackPolicy::none().fuel_retries(4))
            .build();
        let outcome = engine.invoke(SLOW_COUNTDOWN).unwrap();
        assert_eq!(outcome.value, Observation::Int(99));
        let recovery = engine.last_recovery().expect("the first attempt ran out of fuel");
        assert!(recovery.retries >= 1, "{recovery:?}");
        assert!(!recovery.fell_back);
        // A clean run afterwards clears the record.
        engine.invoke("(invoke (unit (import) (export) (init 1)))").unwrap();
        assert!(engine.last_recovery().is_none());
    }

    #[test]
    fn exhausted_retries_still_surface_a_typed_error() {
        let engine = Engine::builder()
            .strictness(Strictness::MzScheme)
            .limits(Limits::none().fuel(50))
            .on_failure(FallbackPolicy::none().fuel_retries(2))
            .build();
        let err = engine
            .load("(letrec ((define loop (lambda () (loop)))) (loop))")
            .unwrap()
            .run()
            .unwrap_err();
        // Two retries at factor 2: the final budget was 50 * 4.
        assert_eq!(err.as_resource_exhausted(), Some((Resource::Fuel, 200)));
        let recovery = engine.last_recovery().unwrap();
        assert_eq!(recovery.retries, 2);
        assert!(!recovery.fell_back);
    }

    #[test]
    fn program_errors_are_not_masked_by_the_fallback_policy() {
        let engine = Engine::builder()
            .on_failure(FallbackPolicy::reference().fuel_retries(2))
            .build();
        let err = engine
            .invoke("(invoke (unit (import) (export) (init (/ 1 0))))")
            .unwrap_err();
        assert!(matches!(
            err.as_runtime(),
            Some(units_runtime::RuntimeError::DivisionByZero)
        ));
        let recovery = engine.last_recovery().unwrap();
        assert!(!recovery.fell_back, "deterministic program errors must not re-run");
        assert_eq!(recovery.retries, 0);
    }

    #[cfg(feature = "faults")]
    mod faulted {
        use super::*;
        use units_trace::faults::{self, FaultKind};

        #[test]
        fn injected_compiled_fault_falls_back_to_the_reducer() {
            let engine =
                Engine::builder().on_failure(FallbackPolicy::reference().diagnose(false)).build();
            let loaded = engine.load(SQUARE).unwrap();
            faults::arm(faults::FaultPlane::seeded(11).trigger("compile/eval", 1));
            let outcome = loaded.run_on(Backend::Compiled);
            faults::disarm();
            assert_eq!(outcome.unwrap().value, Observation::Int(144));
            let recovery = engine.last_recovery().unwrap();
            assert!(recovery.fell_back, "{recovery:?}");
            assert!(recovery.failure.contains("injected fault at compile/eval"));
        }

        #[test]
        fn injected_vm_fault_falls_back_to_the_reducer() {
            let engine =
                Engine::builder().on_failure(FallbackPolicy::reference().diagnose(false)).build();
            let loaded = engine.load(SQUARE).unwrap();
            faults::arm(faults::FaultPlane::seeded(11).trigger("vm/dispatch", 1));
            let outcome = loaded.run_on(Backend::Bytecode);
            faults::disarm();
            assert_eq!(outcome.unwrap().value, Observation::Int(144));
            let recovery = engine.last_recovery().unwrap();
            assert!(recovery.fell_back, "{recovery:?}");
            assert!(recovery.failure.contains("injected fault at vm/dispatch"));
        }

        #[test]
        fn injected_panic_is_caught_and_evicts_the_artifact() {
            let engine = Engine::new();
            let loaded = engine.load(SQUARE).unwrap();
            assert_eq!(engine.cache_stats().entries, 1);
            faults::install_quiet_hook();
            faults::arm(
                faults::FaultPlane::seeded(5)
                    .kind(FaultKind::Panic)
                    .trigger("runtime/prim", 1),
            );
            let err = loaded.run().unwrap_err();
            faults::disarm();
            let (stage, message) = err.as_internal().expect("panic surfaces as Internal");
            assert_eq!(stage, "run");
            assert!(message.contains("injected panic at runtime/prim"), "{message}");
            assert_eq!(engine.cache_stats().entries, 0, "failed run's artifact evicted");
            // The session is still usable: a reload re-admits and runs.
            assert_eq!(engine.invoke(SQUARE).unwrap().value, Observation::Int(144));
        }
    }

    #[test]
    fn load_batch_preserves_input_order() {
        let engine = Engine::builder().threads(4).build();
        let sources = [
            "(invoke (unit (import) (export) (init 1)))",
            "(+ nope 1)",
            "(invoke (unit (import) (export) (init 3)))",
        ];
        let results = engine.load_batch(&sources);
        assert_eq!(results[0].as_ref().unwrap().run().unwrap().value, Observation::Int(1));
        assert!(results[1].as_ref().err().and_then(|e| e.as_check()).is_some());
        assert_eq!(results[2].as_ref().unwrap().run().unwrap().value, Observation::Int(3));
    }

    #[test]
    fn load_batch_accepts_owned_strings() {
        let engine = Engine::builder().threads(2).build();
        let sources: Vec<String> = (1..=4)
            .map(|n| format!("(invoke (unit (import) (export) (init {n})))"))
            .collect();
        // By reference and by value: both iterator shapes work.
        let by_ref = engine.load_batch(&sources);
        assert_eq!(by_ref.len(), 4);
        let by_val = engine.load_batch(sources);
        for (n, result) in by_val.iter().enumerate() {
            let outcome = result.as_ref().unwrap().run().unwrap();
            assert_eq!(outcome.value, Observation::Int(n as i64 + 1));
        }
    }

    #[test]
    fn load_expr_caches_by_term() {
        let engine = Engine::new();
        let expr = units_syntax::parse_expr(SQUARE).unwrap();
        engine.load_expr(expr.clone()).unwrap();
        engine.load_expr(expr).unwrap();
        let stats = engine.cache_stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }
}
