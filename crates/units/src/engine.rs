//! Engine sessions: cached artifacts, parallel checking, budgeted runs.
//!
//! An [`Engine`] is a long-lived session that owns a cache of checked and
//! slot-resolved unit artifacts. The cache is keyed by a content hash of
//! the alpha-normalized kernel term together with the [`CheckOptions`],
//! so loading the same source twice — or an alpha-renamed copy of it —
//! skips the Fig. 10/15/19 checks and the §4.1.6 resolution prepass, and
//! every instantiation shares one compiled copy of the code (the paper's
//! "one copy of the code regardless of how many times the unit is linked
//! or invoked").
//!
//! Independent sources (top-level batches, [`Archive`] entries) are
//! checked in parallel on a `std::thread` worker pool: checkers are pure
//! and share only the process-wide interned symbols. The
//! `UNITS_ENGINE_THREADS` environment variable pins the pool size (1
//! forces fully sequential, deterministic loading).
//!
//! Execution is governed by [`Limits`]: fuel, evaluation depth, and
//! store-cell budgets all surface as [`Error::ResourceExhausted`] instead
//! of a panic or a stack overflow.
//!
//! # Example
//!
//! ```
//! use units::{Engine, Level, Limits, Observation};
//!
//! let engine = Engine::builder()
//!     .level(Level::Untyped)
//!     .limits(Limits::none().fuel(100_000))
//!     .build();
//! let outcome = engine.invoke(
//!     "(define hello (unit (import) (export) (init (* 6 7))))
//!      (invoke hello)",
//! )?;
//! assert_eq!(outcome.value, Observation::Int(42));
//! // A second invocation of the same source is a cache hit.
//! engine.invoke("(define hello (unit (import) (export) (init (* 6 7))))
//!                (invoke hello)")?;
//! assert_eq!(engine.cache_stats().hits, 1);
//! # Ok::<(), units::Error>(())
//! ```

use std::cell::{Cell, RefCell};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::rc::Rc;
use std::sync::Mutex;

use units_check::{check_program, CheckError, CheckOptions, Level, Strictness};
use units_compile::{evaluate_program, resolve_program, Archive};
use units_kernel::{alpha_eq, alpha_hash, Expr, Ty};
use units_reduce::Reducer;
use units_runtime::{Limits, Machine};
use units_syntax::{parse_file, ParseError};

use crate::error::Error;
use crate::observe::{observe_expr, observe_value};
use crate::program::{Backend, Outcome};

/// A checked (and, for the production backend, slot-resolved) program,
/// shared by every load that produced it.
#[derive(Debug)]
struct Artifact {
    /// The parsed kernel term, as written.
    expr: Expr,
    /// The program's type at typed levels.
    ty: Option<Ty>,
    /// The lexical-address-resolved form the compiled backend runs.
    resolved: Option<Expr>,
}

#[derive(Debug, Default)]
struct Cache {
    /// Exact-source fast path: hash of the raw text (plus options).
    by_source: HashMap<u64, Rc<Artifact>>,
    /// Content path: alpha-normalized term hash (plus options), with the
    /// bucket confirmed by [`alpha_eq`] to rule out collisions.
    by_term: HashMap<u64, Vec<Rc<Artifact>>>,
}

/// Cache counters, for tests and dashboards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Loads satisfied from the cache (by source text or by term).
    pub hits: u64,
    /// Loads that had to check and resolve from scratch.
    pub misses: u64,
    /// Distinct artifacts currently cached.
    pub entries: usize,
}

/// Configures and constructs an [`Engine`].
#[derive(Debug, Clone)]
pub struct EngineBuilder {
    level: Level,
    strictness: Strictness,
    backend: Backend,
    limits: Limits,
    resolve: Option<bool>,
    threads: Option<usize>,
}

impl Default for EngineBuilder {
    fn default() -> EngineBuilder {
        EngineBuilder {
            // UNITd, like `Program::parse`: the facade checks statically
            // only when a typed level is asked for.
            level: Level::Untyped,
            strictness: Strictness::default(),
            backend: Backend::default(),
            limits: Limits::default(),
            resolve: None,
            threads: None,
        }
    }
}

impl EngineBuilder {
    /// Selects the calculus to check against (default [`Level::Untyped`]).
    pub fn level(mut self, level: Level) -> EngineBuilder {
        self.level = level;
        self
    }

    /// Selects paper-strict or MzScheme-strict definition checking.
    pub fn strictness(mut self, strictness: Strictness) -> EngineBuilder {
        self.strictness = strictness;
        self
    }

    /// Selects the default backend for [`Loaded::run`].
    pub fn backend(mut self, backend: Backend) -> EngineBuilder {
        self.backend = backend;
        self
    }

    /// Sets the resource budgets every run is governed by.
    pub fn limits(mut self, limits: Limits) -> EngineBuilder {
        self.limits = limits;
        self
    }

    /// Enables or disables the lexical-address resolution prepass
    /// (`units_compile::resolve_program`). On by default.
    pub fn resolution(mut self, on: bool) -> EngineBuilder {
        self.resolve = Some(on);
        self
    }

    /// Sets the checking worker-pool size. Defaults to the available
    /// parallelism (capped at 8); the `UNITS_ENGINE_THREADS` environment
    /// variable overrides both.
    pub fn threads(mut self, threads: usize) -> EngineBuilder {
        self.threads = Some(threads.max(1));
        self
    }

    /// Builds the engine.
    pub fn build(self) -> Engine {
        let threads = match std::env::var("UNITS_ENGINE_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
        {
            Some(n) if n >= 1 => n,
            _ => self.threads.unwrap_or_else(default_threads),
        };
        Engine {
            opts: CheckOptions { level: self.level, strictness: self.strictness },
            backend: self.backend,
            limits: self.limits,
            resolve: self.resolve.unwrap_or(true),
            threads,
            cache: RefCell::new(Cache::default()),
            hits: Cell::new(0),
            misses: Cell::new(0),
        }
    }
}

fn default_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get().min(8)).unwrap_or(1)
}

/// A session that checks, caches, and runs programs.
///
/// See the [module documentation](self) for the full story.
#[derive(Debug)]
pub struct Engine {
    opts: CheckOptions,
    backend: Backend,
    limits: Limits,
    resolve: bool,
    threads: usize,
    cache: RefCell<Cache>,
    hits: Cell<u64>,
    misses: Cell<u64>,
}

impl Default for Engine {
    fn default() -> Engine {
        Engine::builder().build()
    }
}

/// What a worker can report back across the thread boundary. `Expr` is
/// `Rc`-backed and deliberately not `Send`, so workers return only the
/// check verdict; the main thread re-parses winners to materialize terms.
enum BatchFailure {
    Parse(ParseError),
    Check(Vec<CheckError>),
}

impl From<BatchFailure> for Error {
    fn from(f: BatchFailure) -> Error {
        match f {
            BatchFailure::Parse(e) => Error::Parse(e),
            BatchFailure::Check(errs) => Error::Check(errs),
        }
    }
}

fn check_source(source: &str, opts: CheckOptions) -> Result<Option<Ty>, BatchFailure> {
    let expr = parse_file(source).map_err(BatchFailure::Parse)?;
    check_program(&expr, opts).map_err(BatchFailure::Check)
}

impl Engine {
    /// Starts configuring an engine.
    pub fn builder() -> EngineBuilder {
        EngineBuilder::default()
    }

    /// An engine with all defaults (untyped, compiled backend, no limits).
    pub fn new() -> Engine {
        Engine::default()
    }

    /// The level programs are checked at.
    pub fn level(&self) -> Level {
        self.opts.level
    }

    /// The default backend [`Loaded::run`] uses.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// The resource budgets every run is governed by.
    pub fn limits(&self) -> Limits {
        self.limits
    }

    /// The checking worker-pool size.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Cache hit/miss counters and current entry count.
    pub fn cache_stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.get(),
            misses: self.misses.get(),
            entries: self.cache.borrow().by_term.values().map(Vec::len).sum(),
        }
    }

    fn source_key(&self, source: &str) -> u64 {
        let mut h = DefaultHasher::new();
        source.hash(&mut h);
        self.opts.hash(&mut h);
        self.resolve.hash(&mut h);
        h.finish()
    }

    fn term_key(&self, expr: &Expr) -> u64 {
        let mut h = DefaultHasher::new();
        alpha_hash(expr).hash(&mut h);
        self.opts.hash(&mut h);
        self.resolve.hash(&mut h);
        h.finish()
    }

    fn record_hit(&self) {
        self.hits.set(self.hits.get() + 1);
        units_trace::count("engine/cache_hit", 1);
    }

    fn record_miss(&self) {
        self.misses.set(self.misses.get() + 1);
        units_trace::count("engine/cache_miss", 1);
    }

    /// The cached artifact alpha-equal to `expr`, if any, registering the
    /// source key as a fast path for next time.
    fn term_lookup(&self, skey: u64, tkey: u64, expr: &Expr) -> Option<Rc<Artifact>> {
        let mut cache = self.cache.borrow_mut();
        let found = cache
            .by_term
            .get(&tkey)?
            .iter()
            .find(|a| alpha_eq(&a.expr, expr))
            .cloned()?;
        cache.by_source.insert(skey, found.clone());
        Some(found)
    }

    /// Checks and resolves `expr` from scratch, caching the artifact
    /// under both keys. `ty` short-circuits checking when a worker
    /// already produced the verdict.
    fn admit(
        &self,
        skey: u64,
        tkey: u64,
        expr: Expr,
        ty: Option<Option<Ty>>,
    ) -> Result<Rc<Artifact>, Error> {
        let ty = match ty {
            Some(ty) => ty,
            None => check_program(&expr, self.opts)?,
        };
        let resolved = if self.resolve { Some(resolve_program(&expr)) } else { None };
        let artifact = Rc::new(Artifact { expr, ty, resolved });
        let mut cache = self.cache.borrow_mut();
        cache.by_source.insert(skey, artifact.clone());
        cache.by_term.entry(tkey).or_default().push(artifact.clone());
        self.record_miss();
        Ok(artifact)
    }

    /// Parses, checks, and resolves `source` — or retrieves the cached
    /// artifact if an identical (or alpha-equal) program was loaded
    /// before under the same options.
    ///
    /// # Errors
    ///
    /// [`Error::Parse`] or [`Error::Check`]; never a runtime error
    /// (nothing is evaluated yet).
    pub fn load(&self, source: &str) -> Result<Loaded<'_>, Error> {
        let skey = self.source_key(source);
        if let Some(artifact) = self.cache.borrow().by_source.get(&skey).cloned() {
            self.record_hit();
            return Ok(Loaded { engine: self, artifact });
        }
        let expr = parse_file(source)?;
        let tkey = self.term_key(&expr);
        if let Some(artifact) = self.term_lookup(skey, tkey, &expr) {
            self.record_hit();
            return Ok(Loaded { engine: self, artifact });
        }
        let artifact = self.admit(skey, tkey, expr, None)?;
        Ok(Loaded { engine: self, artifact })
    }

    /// Wraps an already-built expression (no parsing; still checked,
    /// resolved, and cached by term).
    ///
    /// # Errors
    ///
    /// [`Error::Check`] when the expression does not check.
    pub fn load_expr(&self, expr: Expr) -> Result<Loaded<'_>, Error> {
        // No source text, so key the source map by the term hash too.
        let tkey = self.term_key(&expr);
        if let Some(artifact) = self.term_lookup(tkey, tkey, &expr) {
            self.record_hit();
            return Ok(Loaded { engine: self, artifact });
        }
        let artifact = self.admit(tkey, tkey, expr, None)?;
        Ok(Loaded { engine: self, artifact })
    }

    /// [`load`](Engine::load) followed by [`Loaded::run`]: the one-call
    /// parse → check → evaluate pipeline.
    ///
    /// # Errors
    ///
    /// Any load or runtime error.
    pub fn invoke(&self, source: &str) -> Result<Outcome, Error> {
        self.load(source)?.run()
    }

    /// Loads many independent sources, checking cache misses in parallel
    /// on the engine's worker pool. Results come back in input order, one
    /// per source; artifacts land in the same cache as [`Engine::load`].
    ///
    /// With one thread (or one job) this degenerates to sequential
    /// [`Engine::load`] calls — the `UNITS_ENGINE_THREADS=1` determinism
    /// mode.
    pub fn load_batch(&self, sources: &[&str]) -> Vec<Result<Loaded<'_>, Error>> {
        let jobs: Vec<(usize, String)> = sources
            .iter()
            .enumerate()
            .filter(|(_, s)| {
                !self.cache.borrow().by_source.contains_key(&self.source_key(s))
            })
            .map(|(i, s)| (i, (*s).to_string()))
            .collect();
        let workers = self.threads.min(jobs.len());
        if workers <= 1 {
            return sources.iter().map(|s| self.load(s)).collect();
        }
        units_trace::count("engine/pool_jobs", jobs.len() as u64);
        units_trace::count("engine/pool_queue_depth", jobs.len() as u64);
        units_trace::count("engine/pool_workers", workers as u64);
        let opts = self.opts;
        let queue = Mutex::new(jobs);
        let verdicts = Mutex::new(
            (0..sources.len()).map(|_| None).collect::<Vec<_>>(),
        );
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let Some((idx, src)) = queue.lock().unwrap().pop() else { break };
                    let verdict = check_source(&src, opts);
                    verdicts.lock().unwrap()[idx] = Some(verdict);
                });
            }
        });
        let verdicts = verdicts.into_inner().unwrap();
        sources
            .iter()
            .zip(verdicts)
            .map(|(source, verdict)| match verdict {
                // Cached before the batch started: a plain (hitting) load.
                None => self.load(source),
                Some(Err(failure)) => Err(failure.into()),
                Some(Ok(ty)) => {
                    // The worker checked; re-parse here to materialize the
                    // (non-Send) term, then resolve and cache it.
                    let skey = self.source_key(source);
                    let expr = parse_file(source)?;
                    let tkey = self.term_key(&expr);
                    let artifact = match self.term_lookup(skey, tkey, &expr) {
                        Some(found) => {
                            self.record_hit();
                            found
                        }
                        None => self.admit(skey, tkey, expr, Some(ty))?,
                    };
                    Ok(Loaded { engine: self, artifact })
                }
            })
            .collect()
    }

    /// Loads every entry of an [`Archive`] (in name order) through
    /// [`Engine::load_batch`]. Returns `(name, result)` pairs.
    pub fn load_archive<'e>(
        &'e self,
        archive: &Archive,
    ) -> Vec<(String, Result<Loaded<'e>, Error>)> {
        let names = archive.names();
        let sources: Vec<&str> =
            names.iter().map(|n| archive.get(n).expect("listed name is published")).collect();
        let loaded = self.load_batch(&sources);
        names.into_iter().map(String::from).zip(loaded).collect()
    }
}

/// A checked, cached program, ready to run under the engine's limits.
///
/// Produced by [`Engine::load`]; borrowing the engine keeps the cache
/// alive and lets `run` pick up the session's backend and budgets.
#[derive(Debug)]
pub struct Loaded<'e> {
    engine: &'e Engine,
    artifact: Rc<Artifact>,
}

impl Loaded<'_> {
    /// The program's type at typed levels (`None` at UNITd).
    pub fn ty(&self) -> Option<&Ty> {
        self.artifact.ty.as_ref()
    }

    /// The parsed kernel term.
    pub fn expr(&self) -> &Expr {
        &self.artifact.expr
    }

    /// Runs on the engine's default backend.
    ///
    /// # Errors
    ///
    /// Any runtime error; budget exhaustion surfaces as
    /// [`Error::ResourceExhausted`].
    pub fn run(&self) -> Result<Outcome, Error> {
        self.run_on(self.engine.backend)
    }

    /// Runs on a specific backend under the engine's [`Limits`].
    ///
    /// The compiled backend evaluates the cached resolved term in place —
    /// every instantiation shares the one compiled copy (§4.1.6); the
    /// reducer works on the substitution semantics of Fig. 11.
    ///
    /// # Errors
    ///
    /// As for [`Loaded::run`].
    pub fn run_on(&self, backend: Backend) -> Result<Outcome, Error> {
        match backend {
            Backend::Compiled => {
                let _timer = units_trace::time("eval");
                let mut machine = Machine::with_limits(self.engine.limits);
                let expr = self.artifact.resolved.as_ref().unwrap_or(&self.artifact.expr);
                let value = evaluate_program(expr, &mut machine)?;
                units_trace::count("engine/fuel_used", machine.steps_taken());
                Ok(Outcome { value: observe_value(&value), output: machine.take_output() })
            }
            Backend::Reducer => {
                let mut reducer = Reducer::with_limits(self.engine.limits);
                let value = reducer.reduce_to_value(&self.artifact.expr)?;
                units_trace::count("engine/fuel_used", reducer.machine.steps_taken());
                Ok(Outcome { value: observe_expr(&value), output: reducer.machine.take_output() })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Observation;

    const SQUARE: &str = "(invoke (unit (import) (export)
        (define square (lambda (n) (* n n)))
        (init (square 12))))";

    #[test]
    fn invoke_runs_and_caches() {
        let engine = Engine::new();
        assert_eq!(engine.invoke(SQUARE).unwrap().value, Observation::Int(144));
        assert_eq!(engine.invoke(SQUARE).unwrap().value, Observation::Int(144));
        let stats = engine.cache_stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn alpha_renamed_sources_share_one_artifact() {
        let engine = Engine::new();
        engine.invoke(SQUARE).unwrap();
        let renamed = "(invoke (unit (import) (export)
            (define sq (lambda (m) (* m m)))
            (init (sq 12))))";
        assert_eq!(engine.invoke(renamed).unwrap().value, Observation::Int(144));
        let stats = engine.cache_stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
    }

    #[test]
    fn different_options_do_not_share_artifacts() {
        let untyped = Engine::new();
        untyped.invoke("(invoke (unit (import) (export) (init 5)))").unwrap();
        let typed = Engine::builder().level(Level::Constructed).build();
        let loaded = typed.load("(invoke (unit (import) (export) (init 5)))").unwrap();
        assert_eq!(loaded.ty(), Some(&Ty::Int));
        assert_eq!(typed.cache_stats().misses, 1);
        assert_eq!(typed.cache_stats().hits, 0);
    }

    #[test]
    fn check_errors_surface_before_running() {
        let err = Engine::new().invoke("(+ nope 1)").unwrap_err();
        assert!(err.as_check().is_some());
    }

    #[test]
    fn fuel_exhaustion_is_typed_on_both_backends() {
        let engine = Engine::builder()
            .strictness(Strictness::MzScheme)
            .limits(Limits::none().fuel(5_000))
            .build();
        let loaded = engine
            .load("(letrec ((define loop (lambda () (loop)))) (loop))")
            .unwrap();
        for backend in [Backend::Compiled, Backend::Reducer] {
            let err = loaded.run_on(backend).unwrap_err();
            assert_eq!(
                err.as_resource_exhausted(),
                Some((units_runtime::Resource::Fuel, 5_000)),
                "{backend:?}: {err}"
            );
        }
    }

    #[test]
    fn load_batch_preserves_input_order() {
        let engine = Engine::builder().threads(4).build();
        let sources = [
            "(invoke (unit (import) (export) (init 1)))",
            "(+ nope 1)",
            "(invoke (unit (import) (export) (init 3)))",
        ];
        let results = engine.load_batch(&sources);
        assert_eq!(results[0].as_ref().unwrap().run().unwrap().value, Observation::Int(1));
        assert!(results[1].as_ref().err().and_then(|e| e.as_check()).is_some());
        assert_eq!(results[2].as_ref().unwrap().run().unwrap().value, Observation::Int(3));
    }

    #[test]
    fn load_expr_caches_by_term() {
        let engine = Engine::new();
        let expr = units_syntax::parse_expr(SQUARE).unwrap();
        engine.load_expr(expr.clone()).unwrap();
        engine.load_expr(expr).unwrap();
        let stats = engine.cache_stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }
}
