//! # units — Cool Modules for HOT Languages
//!
//! A complete Rust implementation of the *program units* module system of
//! Matthew Flatt and Matthias Felleisen, **"Units: Cool Modules for HOT
//! Languages"** (PLDI 1998): separate compilation, externally specified
//! linking, hierarchical structuring, cyclic (mutually recursive) links,
//! first-class units, and type-safe dynamic linking.
//!
//! ## The pieces
//!
//! | Crate | Paper artifact |
//! |---|---|
//! | [`units_syntax`] | the textual grammars of Figs. 9/13/16 |
//! | [`units_kernel`] | terms, types, signatures, binding operations |
//! | [`units_check`] | Fig. 10 context checks; Fig. 14/17 subtyping; Fig. 15/19 typing; Fig. 18 expansion |
//! | [`units_reduce`] | the Fig. 11 rewriting semantics (reference) |
//! | [`units_compile`] | the §4.1.6 cells backend (production) + §3.4 dynamic linking |
//! | this crate | the pipeline, the paper's running examples, differential testing |
//!
//! ## Engine quick start
//!
//! An [`Engine`] is a session: it checks programs (in parallel for
//! batches), caches the checked/resolved artifacts by content hash, and
//! runs them under resource budgets.
//!
//! ```
//! use units::{Engine, Observation};
//!
//! let engine = Engine::builder().build();
//! // Fig. 12's even/odd units, linked cyclically and invoked.
//! let outcome = engine.invoke(
//!     "(invoke (compound (import) (export)
//!        (link ((unit (import odd) (export even)
//!                 (define even (lambda (n) (if (= n 0) true (odd (- n 1))))))
//!               (with odd) (provides even))
//!              ((unit (import even) (export odd)
//!                 (define odd (lambda (n) (if (= n 0) false (even (- n 1)))))
//!                 (init (odd 13)))
//!               (with even) (provides odd)))))",
//! )?;
//! assert_eq!(outcome.value, Observation::Bool(true));
//! // Loading the same (or an alpha-renamed) source again skips
//! // checking and resolution entirely:
//! assert_eq!(engine.cache_stats().misses, 1);
//! # Ok::<(), units::Error>(())
//! ```
//!
//! The paper's full interactive phone book (Figs. 1–7) ships in
//! [`stdlib`]; `examples/` contains runnable binaries for each scenario.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diagram;
mod engine;
mod error;
mod metrics;
mod observe;
mod outcome;
pub mod stdlib;
pub mod typed_stdlib;

pub use engine::{CacheStats, Engine, EngineBuilder, FallbackPolicy, Loaded, Recovery};
#[allow(deprecated)]
pub use engine::LoadedRef;
pub use error::Error;
pub use metrics::{
    CacheMetrics, LatencyStats, MetricsSnapshot, PoolMetrics, RecoveryMetrics, RunMetrics,
    StoreMetrics,
};
pub use observe::{observe_expr, observe_value, Observation};
#[cfg(feature = "trace")]
pub use observe::{
    diagnose_divergence, diagnose_divergence_between, diagnose_divergence_with, DivergenceReport,
};
pub use outcome::{Backend, Outcome};

/// The tracing substrate, re-exported so downstream users can install
/// sinks and read metrics without naming the `units-trace` crate. With
/// the `trace` cargo feature off every hook is a no-op.
pub use units_trace as trace;

// Re-export the pieces a downstream user needs without naming every crate.
pub use units_check::{
    check_program, expand_sig, expand_ty, reachable_tys, subtype, ty_equal, type_of, CheckError,
    CheckOptions, Equations, Level, Strictness,
};
pub use units_compile::{
    evaluate_program, invoke_unit, load_interface, load_unit, publish_unit, Archive,
    ArtifactError, ChunkProfile, DynlinkError, Published,
};
pub use units_trace::FlightDump;
pub use units_kernel::{
    alpha_eq, free_val_vars, Depend, Expr, InvokeExpr, Kind, Ports, Signature, Symbol, Ty,
    TyPort, UnitExpr, ValPort,
};
pub use units_reduce::{merge_compound, Reducer, Step};
pub use units_runtime::{Limits, Machine, Resource, RuntimeError, UnitValue, Value};
pub use units_syntax::{
    parse_expr, parse_file, parse_signature, parse_ty, pretty_expr, pretty_expr_indent,
    pretty_signature, pretty_ty,
    ParseError,
};
