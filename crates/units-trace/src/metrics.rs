//! A thread-safe registry of monotonic counters, duration histograms,
//! and completed wall-clock spans.
//!
//! Counters are keyed by `'static` names following a `phase/what`
//! convention (`"reduce/steps"`, `"prim/+"`, `"runtime/cells"`).
//! Durations are recorded into per-name statistics with log₂(ns)
//! buckets — wall-clock data lives only here, never in events, so event
//! streams stay deterministic. Each timed duration also lands in a
//! bounded span log ([`SpanRecord`]) relative to the registry's
//! creation instant, which [`Metrics::chrome_trace_json`] exports as a
//! Chrome-trace/Perfetto timeline (`chrome://tracing`, ui.perfetto.dev).

use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Number of log₂ nanosecond buckets ([`DurationStats::buckets`]).
/// Bucket `i` counts samples with `floor(log2(ns)) == i`, clamped at
/// the top; bucket 31 therefore holds everything ≥ ~2.1 s.
pub const DURATION_BUCKETS: usize = 32;

/// Aggregated statistics for one named duration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DurationStats {
    /// How many samples were recorded.
    pub count: u64,
    /// Sum of all samples, in nanoseconds.
    pub total_ns: u64,
    /// Smallest sample, in nanoseconds.
    pub min_ns: u64,
    /// Largest sample, in nanoseconds.
    pub max_ns: u64,
    /// log₂(ns) histogram; see [`DURATION_BUCKETS`].
    pub buckets: [u64; DURATION_BUCKETS],
}

impl Default for DurationStats {
    fn default() -> DurationStats {
        DurationStats {
            count: 0,
            total_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
            buckets: [0; DURATION_BUCKETS],
        }
    }
}

impl DurationStats {
    /// Records one sample of `ns` nanoseconds.
    pub fn record_ns(&mut self, ns: u64) {
        self.count += 1;
        self.total_ns += ns;
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
        let bucket = (63 - ns.max(1).leading_zeros() as usize).min(DURATION_BUCKETS - 1);
        self.buckets[bucket] += 1;
    }

    /// Mean sample duration in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> u64 {
        self.total_ns.checked_div(self.count).unwrap_or(0)
    }

    /// An estimate of the `p`-quantile (`0.0 < p <= 1.0`) in
    /// nanoseconds, derived from the log₂ histogram: the upper edge of
    /// the bucket holding the quantile sample, clamped to the observed
    /// `[min_ns, max_ns]` range so single-sample and tail queries stay
    /// exact. Returns 0 when no samples were recorded.
    pub fn percentile_ns(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let upper = (1u64 << (i + 1)).saturating_sub(1).max(1);
                return upper.clamp(self.min_ns, self.max_ns);
            }
        }
        self.max_ns
    }

    /// Median sample duration in nanoseconds (bucket estimate).
    pub fn p50_ns(&self) -> u64 {
        self.percentile_ns(0.50)
    }

    /// 99th-percentile sample duration in nanoseconds (bucket estimate).
    pub fn p99_ns(&self) -> u64 {
        self.percentile_ns(0.99)
    }
}

/// One completed wall-clock span, with both endpoints expressed in
/// nanoseconds since the owning [`Metrics`] registry was created.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// The timed scope's name (same key as its duration histogram).
    pub name: &'static str,
    /// Start offset from the registry's epoch, in nanoseconds.
    pub start_ns: u64,
    /// How long the span lasted, in nanoseconds.
    pub dur_ns: u64,
}

/// Most spans kept per registry before new ones are counted as dropped
/// ([`Metrics::spans_dropped`]) — bounds memory on long sessions.
pub const SPAN_CAPACITY: usize = 65_536;

#[derive(Debug, Default)]
struct SpanLog {
    records: Vec<SpanRecord>,
    dropped: u64,
}

/// The registry. Cheap to share (`Arc<Metrics>`) and safe to update
/// from any thread.
#[derive(Debug)]
pub struct Metrics {
    /// When this registry was created — span offsets are relative to it.
    epoch: Instant,
    counters: Mutex<BTreeMap<&'static str, u64>>,
    /// Counters with a runtime-supplied label dimension (tenant names,
    /// plug-in names — anything not known at compile time), keyed
    /// `name{label}`.
    labeled: Mutex<BTreeMap<String, u64>>,
    durations: Mutex<BTreeMap<&'static str, DurationStats>>,
    spans: Mutex<SpanLog>,
}

impl Default for Metrics {
    fn default() -> Metrics {
        Metrics {
            epoch: Instant::now(),
            counters: Mutex::default(),
            labeled: Mutex::default(),
            durations: Mutex::default(),
            spans: Mutex::default(),
        }
    }
}

impl Metrics {
    /// An empty registry.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Adds `delta` to the counter `name` (creating it at zero).
    pub fn add(&self, name: &'static str, delta: u64) {
        let mut counters = self.counters.lock().expect("metrics counter lock");
        *counters.entry(name).or_insert(0) += delta;
    }

    /// Adds `delta` to the labeled counter `name{label}` — the
    /// per-tenant/per-plug-in variant of [`Metrics::add`], for label
    /// values only known at runtime. Static-name counters stay on the
    /// allocation-free fast path of [`Metrics::add`]; labeled ones pay
    /// one string render per update.
    pub fn add_labeled(&self, name: &'static str, label: &str, delta: u64) {
        let mut labeled = self.labeled.lock().expect("metrics labeled lock");
        *labeled.entry(format!("{name}{{{label}}}")).or_insert(0) += delta;
    }

    /// The current value of one labeled counter (0 if never touched).
    pub fn labeled_counter(&self, name: &str, label: &str) -> u64 {
        self.labeled
            .lock()
            .expect("metrics labeled lock")
            .get(&format!("{name}{{{label}}}"))
            .copied()
            .unwrap_or(0)
    }

    /// A snapshot of every labeled counter, keyed `name{label}`.
    pub fn labeled_counters(&self) -> BTreeMap<String, u64> {
        self.labeled.lock().expect("metrics labeled lock").clone()
    }

    /// Records one sample of the duration `name`.
    pub fn record_duration(&self, name: &'static str, duration: Duration) {
        let ns = u64::try_from(duration.as_nanos()).unwrap_or(u64::MAX);
        let mut durations = self.durations.lock().expect("metrics duration lock");
        durations.entry(name).or_default().record_ns(ns);
    }

    /// Records one completed span (`name`, started at `start`, lasting
    /// `duration`) into the bounded span log. Spans that started before
    /// this registry existed are clamped to offset 0; once the log holds
    /// [`SPAN_CAPACITY`] records, further spans only bump the dropped
    /// count.
    pub fn record_span(&self, name: &'static str, start: Instant, duration: Duration) {
        let start_ns = start
            .checked_duration_since(self.epoch)
            .map(|d| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX))
            .unwrap_or(0);
        let dur_ns = u64::try_from(duration.as_nanos()).unwrap_or(u64::MAX);
        let mut log = self.spans.lock().expect("metrics span lock");
        if log.records.len() >= SPAN_CAPACITY {
            log.dropped += 1;
        } else {
            log.records.push(SpanRecord { name, start_ns, dur_ns });
        }
    }

    /// The current value of one counter (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.lock().expect("metrics counter lock").get(name).copied().unwrap_or(0)
    }

    /// A snapshot of every counter.
    pub fn counters(&self) -> BTreeMap<&'static str, u64> {
        self.counters.lock().expect("metrics counter lock").clone()
    }

    /// A snapshot of every duration's statistics.
    pub fn durations(&self) -> BTreeMap<&'static str, DurationStats> {
        self.durations.lock().expect("metrics duration lock").clone()
    }

    /// A snapshot of the span log, in completion order.
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.spans.lock().expect("metrics span lock").records.clone()
    }

    /// How many spans were discarded because the log was full.
    pub fn spans_dropped(&self) -> u64 {
        self.spans.lock().expect("metrics span lock").dropped
    }

    /// Clears all counters, histograms, and spans.
    pub fn reset(&self) {
        self.counters.lock().expect("metrics counter lock").clear();
        self.labeled.lock().expect("metrics labeled lock").clear();
        self.durations.lock().expect("metrics duration lock").clear();
        let mut log = self.spans.lock().expect("metrics span lock");
        log.records.clear();
        log.dropped = 0;
    }

    /// The span log as a Chrome-trace/Perfetto JSON document — one
    /// complete (`"ph":"X"`) event per span, timestamps in microseconds
    /// with nanosecond fractions. Load the output in `chrome://tracing`
    /// or ui.perfetto.dev for a whole-session timeline. Always a valid
    /// JSON object, even when no spans were recorded.
    pub fn chrome_trace_json(&self) -> String {
        let log = self.spans.lock().expect("metrics span lock");
        let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        for (i, s) in log.records.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":{},\"cat\":\"units\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\
                 \"ts\":{}.{:03},\"dur\":{}.{:03}}}",
                crate::json::escape(s.name),
                s.start_ns / 1_000,
                s.start_ns % 1_000,
                s.dur_ns / 1_000,
                s.dur_ns % 1_000,
            ));
        }
        out.push_str("]}");
        out
    }

    /// The whole registry as one JSON object: `{"counters": {...},
    /// "labeled": {"name{label}": n, ...}, "durations": {name: {count,
    /// total_ns, ...}}}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (name, value)) in self.counters().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&crate::json::escape(name));
            out.push(':');
            out.push_str(&value.to_string());
        }
        out.push_str("},\"labeled\":{");
        for (i, (name, value)) in self.labeled_counters().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&crate::json::escape(name));
            out.push(':');
            out.push_str(&value.to_string());
        }
        out.push_str("},\"durations\":{");
        for (i, (name, stats)) in self.durations().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&crate::json::escape(name));
            out.push_str(&format!(
                ":{{\"count\":{},\"total_ns\":{},\"min_ns\":{},\"max_ns\":{},\"mean_ns\":{},\
                 \"p50_ns\":{},\"p99_ns\":{}}}",
                stats.count,
                stats.total_ns,
                if stats.count == 0 { 0 } else { stats.min_ns },
                stats.max_ns,
                stats.mean_ns(),
                stats.p50_ns(),
                stats.p99_ns()
            ));
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let m = Metrics::new();
        m.add("reduce/steps", 2);
        m.add("reduce/steps", 3);
        m.add("prim/+", 1);
        assert_eq!(m.counter("reduce/steps"), 5);
        assert_eq!(m.counter("never"), 0);
        let snap = m.counters();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap["prim/+"], 1);
    }

    #[test]
    fn durations_track_count_min_max_and_buckets() {
        let m = Metrics::new();
        m.record_duration("parse", Duration::from_nanos(100));
        m.record_duration("parse", Duration::from_nanos(1_000_000));
        let stats = &m.durations()["parse"];
        assert_eq!(stats.count, 2);
        assert_eq!(stats.min_ns, 100);
        assert_eq!(stats.max_ns, 1_000_000);
        assert_eq!(stats.total_ns, 1_000_100);
        assert_eq!(stats.buckets.iter().sum::<u64>(), 2);
        // floor(log2(100)) = 6, floor(log2(1e6)) = 19.
        assert_eq!(stats.buckets[6], 1);
        assert_eq!(stats.buckets[19], 1);
    }

    #[test]
    fn reset_clears_everything() {
        let m = Metrics::new();
        m.add("x", 1);
        m.add_labeled("x", "t", 1);
        m.record_duration("y", Duration::from_nanos(5));
        m.reset();
        assert!(m.counters().is_empty());
        assert!(m.labeled_counters().is_empty());
        assert!(m.durations().is_empty());
    }

    #[test]
    fn labeled_counters_key_by_name_and_label() {
        let m = Metrics::new();
        m.add_labeled("serve/requests", "tenant-a", 2);
        m.add_labeled("serve/requests", "tenant-a", 1);
        m.add_labeled("serve/requests", "tenant-b", 5);
        assert_eq!(m.labeled_counter("serve/requests", "tenant-a"), 3);
        assert_eq!(m.labeled_counter("serve/requests", "tenant-b"), 5);
        assert_eq!(m.labeled_counter("serve/requests", "tenant-c"), 0);
        let snap = m.labeled_counters();
        assert_eq!(snap["serve/requests{tenant-a}"], 3);
        // Labeled counters land in the JSON export under their own key.
        let json = m.to_json();
        crate::json::validate(&json).unwrap();
        assert!(json.contains("serve/requests{tenant-b}"), "{json}");
    }

    #[test]
    fn metrics_json_is_valid() {
        let m = Metrics::new();
        m.add("prim/+", 4);
        m.record_duration("eval", Duration::from_micros(3));
        let json = m.to_json();
        crate::json::validate(&json).unwrap();
        assert!(json.contains("\"p50_ns\"") && json.contains("\"p99_ns\""));
    }

    #[test]
    fn percentiles_walk_the_buckets() {
        let mut stats = DurationStats::default();
        assert_eq!(stats.percentile_ns(0.5), 0, "empty stats have no quantiles");
        // Half the samples in the [64, 127] bucket, half far above it.
        for _ in 0..50 {
            stats.record_ns(100);
        }
        for _ in 0..50 {
            stats.record_ns(1 << 20);
        }
        assert_eq!(stats.p50_ns(), 127, "median sits at its bucket's upper edge");
        assert!(stats.p50_ns() < stats.p99_ns());
        assert_eq!(stats.percentile_ns(1.0), 1 << 20, "tail clamps to the observed max");
        // A single sample is reported exactly (clamped to [min, max]).
        let mut one = DurationStats::default();
        one.record_ns(42);
        assert_eq!(one.p50_ns(), 42);
        assert_eq!(one.p99_ns(), 42);
    }

    #[test]
    fn spans_are_logged_and_exported_as_chrome_trace() {
        let m = Metrics::new();
        let start = Instant::now();
        m.record_span("eval", start, Duration::from_micros(5));
        m.record_span("check", start, Duration::from_nanos(750));
        let spans = m.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "eval");
        assert_eq!(spans[0].dur_ns, 5_000);
        assert_eq!(m.spans_dropped(), 0);
        let chrome = m.chrome_trace_json();
        crate::json::validate(&chrome).unwrap();
        assert!(chrome.contains("\"traceEvents\""));
        assert!(chrome.contains("\"ph\":\"X\""));
        assert!(chrome.contains("\"name\":\"check\""));
        m.reset();
        assert!(m.spans().is_empty());
        crate::json::validate(&m.chrome_trace_json()).expect("empty export is still JSON");
    }

    #[test]
    fn span_log_is_bounded() {
        let m = Metrics::new();
        let start = Instant::now();
        for _ in 0..SPAN_CAPACITY + 3 {
            m.record_span("tick", start, Duration::from_nanos(1));
        }
        assert_eq!(m.spans().len(), SPAN_CAPACITY);
        assert_eq!(m.spans_dropped(), 3);
    }
}
