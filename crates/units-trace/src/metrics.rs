//! A thread-safe registry of monotonic counters and duration
//! histograms.
//!
//! Counters are keyed by `'static` names following a `phase/what`
//! convention (`"reduce/steps"`, `"prim/+"`, `"runtime/cells"`).
//! Durations are recorded into per-name statistics with log₂(ns)
//! buckets — wall-clock data lives only here, never in events, so event
//! streams stay deterministic.

use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Duration;

/// Number of log₂ nanosecond buckets ([`DurationStats::buckets`]).
/// Bucket `i` counts samples with `floor(log2(ns)) == i`, clamped at
/// the top; bucket 31 therefore holds everything ≥ ~2.1 s.
pub const DURATION_BUCKETS: usize = 32;

/// Aggregated statistics for one named duration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DurationStats {
    /// How many samples were recorded.
    pub count: u64,
    /// Sum of all samples, in nanoseconds.
    pub total_ns: u64,
    /// Smallest sample, in nanoseconds.
    pub min_ns: u64,
    /// Largest sample, in nanoseconds.
    pub max_ns: u64,
    /// log₂(ns) histogram; see [`DURATION_BUCKETS`].
    pub buckets: [u64; DURATION_BUCKETS],
}

impl Default for DurationStats {
    fn default() -> DurationStats {
        DurationStats {
            count: 0,
            total_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
            buckets: [0; DURATION_BUCKETS],
        }
    }
}

impl DurationStats {
    fn record(&mut self, ns: u64) {
        self.count += 1;
        self.total_ns += ns;
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
        let bucket = (63 - ns.max(1).leading_zeros() as usize).min(DURATION_BUCKETS - 1);
        self.buckets[bucket] += 1;
    }

    /// Mean sample duration in nanoseconds (0 when empty).
    pub fn mean_ns(&self) -> u64 {
        self.total_ns.checked_div(self.count).unwrap_or(0)
    }
}

/// The registry. Cheap to share (`Arc<Metrics>`) and safe to update
/// from any thread.
#[derive(Debug, Default)]
pub struct Metrics {
    counters: Mutex<BTreeMap<&'static str, u64>>,
    durations: Mutex<BTreeMap<&'static str, DurationStats>>,
}

impl Metrics {
    /// An empty registry.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Adds `delta` to the counter `name` (creating it at zero).
    pub fn add(&self, name: &'static str, delta: u64) {
        let mut counters = self.counters.lock().expect("metrics counter lock");
        *counters.entry(name).or_insert(0) += delta;
    }

    /// Records one sample of the duration `name`.
    pub fn record_duration(&self, name: &'static str, duration: Duration) {
        let ns = u64::try_from(duration.as_nanos()).unwrap_or(u64::MAX);
        let mut durations = self.durations.lock().expect("metrics duration lock");
        durations.entry(name).or_default().record(ns);
    }

    /// The current value of one counter (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.lock().expect("metrics counter lock").get(name).copied().unwrap_or(0)
    }

    /// A snapshot of every counter.
    pub fn counters(&self) -> BTreeMap<&'static str, u64> {
        self.counters.lock().expect("metrics counter lock").clone()
    }

    /// A snapshot of every duration's statistics.
    pub fn durations(&self) -> BTreeMap<&'static str, DurationStats> {
        self.durations.lock().expect("metrics duration lock").clone()
    }

    /// Clears all counters and histograms.
    pub fn reset(&self) {
        self.counters.lock().expect("metrics counter lock").clear();
        self.durations.lock().expect("metrics duration lock").clear();
    }

    /// The whole registry as one JSON object:
    /// `{"counters": {...}, "durations": {name: {count, total_ns, ...}}}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (name, value)) in self.counters().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&crate::json::escape(name));
            out.push(':');
            out.push_str(&value.to_string());
        }
        out.push_str("},\"durations\":{");
        for (i, (name, stats)) in self.durations().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&crate::json::escape(name));
            out.push_str(&format!(
                ":{{\"count\":{},\"total_ns\":{},\"min_ns\":{},\"max_ns\":{},\"mean_ns\":{}}}",
                stats.count,
                stats.total_ns,
                if stats.count == 0 { 0 } else { stats.min_ns },
                stats.max_ns,
                stats.mean_ns()
            ));
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let m = Metrics::new();
        m.add("reduce/steps", 2);
        m.add("reduce/steps", 3);
        m.add("prim/+", 1);
        assert_eq!(m.counter("reduce/steps"), 5);
        assert_eq!(m.counter("never"), 0);
        let snap = m.counters();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap["prim/+"], 1);
    }

    #[test]
    fn durations_track_count_min_max_and_buckets() {
        let m = Metrics::new();
        m.record_duration("parse", Duration::from_nanos(100));
        m.record_duration("parse", Duration::from_nanos(1_000_000));
        let stats = &m.durations()["parse"];
        assert_eq!(stats.count, 2);
        assert_eq!(stats.min_ns, 100);
        assert_eq!(stats.max_ns, 1_000_000);
        assert_eq!(stats.total_ns, 1_000_100);
        assert_eq!(stats.buckets.iter().sum::<u64>(), 2);
        // floor(log2(100)) = 6, floor(log2(1e6)) = 19.
        assert_eq!(stats.buckets[6], 1);
        assert_eq!(stats.buckets[19], 1);
    }

    #[test]
    fn reset_clears_everything() {
        let m = Metrics::new();
        m.add("x", 1);
        m.record_duration("y", Duration::from_nanos(5));
        m.reset();
        assert!(m.counters().is_empty());
        assert!(m.durations().is_empty());
    }

    #[test]
    fn metrics_json_is_valid() {
        let m = Metrics::new();
        m.add("prim/+", 4);
        m.record_duration("eval", Duration::from_micros(3));
        crate::json::validate(&m.to_json()).unwrap();
    }
}
