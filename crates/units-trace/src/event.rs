//! Structured events: what happened, where in the pipeline, and at what
//! cost.
//!
//! Events are deliberately *timestamp-free*: two runs of the same
//! program must produce byte-identical event streams (the determinism
//! property `tests/tracing.rs` asserts), so anything wall-clock-shaped
//! lives in [`crate::Metrics`] duration histograms instead.

use std::fmt;

/// A byte range in the source text an event refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: u32,
    /// Byte offset one past the last character.
    pub end: u32,
}

impl Span {
    /// A span covering `start..end`.
    pub fn new(start: u32, end: u32) -> Span {
        Span { start, end }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// The pipeline phase an event was emitted from.
///
/// The taxonomy mirrors the paper's architecture: reading surface syntax
/// (Fig. 1–8), context/type checking (Figs. 10/14/15/17/19), the
/// compiled backend's resolution and linking steps (§4.1.6), the
/// reference reduction semantics (Fig. 11), and primitive evaluation
/// shared by both backends.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// S-expression reading and parsing (`units-syntax`).
    Parse,
    /// Context and type checking (`units-check`).
    Check,
    /// Lexical-address resolution prepass (`units-compile`).
    Resolve,
    /// Unit instantiation and import wiring (`units-compile`).
    Link,
    /// Fig. 11 substitution reduction (`units-reduce`).
    Reduce,
    /// Value-level evaluation and primitives (`units-runtime`).
    Eval,
    /// Artifact caching and worker-pool scheduling (`units::engine`).
    Engine,
}

impl Phase {
    /// Every phase, in pipeline order.
    pub const ALL: [Phase; 7] = [
        Phase::Parse,
        Phase::Check,
        Phase::Resolve,
        Phase::Link,
        Phase::Reduce,
        Phase::Eval,
        Phase::Engine,
    ];

    /// The lowercase phase name used in event output and metric names.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Parse => "parse",
            Phase::Check => "check",
            Phase::Resolve => "resolve",
            Phase::Link => "link",
            Phase::Reduce => "reduce",
            Phase::Eval => "eval",
            Phase::Engine => "engine",
        }
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One structured trace event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Which pipeline phase emitted it.
    pub phase: Phase,
    /// A stable, `'static` event kind, e.g. `"step/beta"` or `"prim"`.
    pub kind: &'static str,
    /// Source span, when the emitter knows one.
    pub span: Option<Span>,
    /// Free-form detail; ground-rendered and deterministic.
    pub payload: String,
    /// Counter deltas recorded alongside the event.
    pub counters: Vec<(&'static str, u64)>,
}

impl Event {
    /// Looks up a counter recorded on this event by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.iter().find(|(n, _)| *n == name).map(|&(_, v)| v)
    }

    /// The event as a single JSON object (one JSON-lines record).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.payload.len());
        out.push_str("{\"phase\":\"");
        out.push_str(self.phase.name());
        out.push_str("\",\"kind\":");
        out.push_str(&crate::json::escape(self.kind));
        if let Some(span) = self.span {
            out.push_str(&format!(",\"span\":[{},{}]", span.start, span.end));
        }
        if !self.payload.is_empty() {
            out.push_str(",\"payload\":");
            out.push_str(&crate::json::escape(&self.payload));
        }
        if !self.counters.is_empty() {
            out.push_str(",\"counters\":{");
            for (i, (name, value)) in self.counters.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&crate::json::escape(name));
                out.push(':');
                out.push_str(&value.to_string());
            }
            out.push('}');
        }
        out.push('}');
        out
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.phase, self.kind)?;
        if let Some(span) = self.span {
            write!(f, " [{span}]")?;
        }
        if !self.payload.is_empty() {
            write!(f, " {}", self.payload)?;
        }
        for (name, value) in &self.counters {
            write!(f, " {name}={value}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_json_is_valid_and_complete() {
        let event = Event {
            phase: Phase::Reduce,
            kind: "step/beta",
            span: Some(Span::new(3, 17)),
            payload: "quote \"me\"".into(),
            counters: vec![("reduce/steps", 1), ("reduce/store_size", 4)],
        };
        let json = event.to_json();
        crate::json::validate(&json).unwrap();
        assert!(json.contains("\"phase\":\"reduce\""));
        assert!(json.contains("\"span\":[3,17]"));
        assert!(json.contains("\"reduce/store_size\":4"));
    }

    #[test]
    fn minimal_event_json_omits_empty_fields() {
        let event = Event {
            phase: Phase::Parse,
            kind: "file",
            span: None,
            payload: String::new(),
            counters: vec![],
        };
        let json = event.to_json();
        crate::json::validate(&json).unwrap();
        assert_eq!(json, "{\"phase\":\"parse\",\"kind\":\"file\"}");
    }

    #[test]
    fn counter_lookup_finds_by_name() {
        let event = Event {
            phase: Phase::Eval,
            kind: "prim",
            span: None,
            payload: String::new(),
            counters: vec![("reduce/step", 7)],
        };
        assert_eq!(event.counter("reduce/step"), Some(7));
        assert_eq!(event.counter("missing"), None);
    }
}
