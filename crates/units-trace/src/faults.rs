//! Deterministic fault injection for the Units pipeline.
//!
//! A [`FaultPlane`] is a seeded, schedule-driven description of *where*
//! and *when* the pipeline should fail on purpose: at named injection
//! points (`"parse/read"`, `"check/program"`, `"reduce/prim"`, …) the
//! pipeline crates call [`trip`], and the armed plane decides — from a
//! SplitMix64 stream or an explicit `(site, nth-hit)` trigger — whether
//! that call returns an [`Injected`] fault or panics outright. Equal
//! seeds over equal trip sequences fire at exactly the same points on
//! every platform, so a failing chaos schedule is a reproducible test
//! case, not a flake.
//!
//! # Injection-point naming
//!
//! Sites are `phase/operation` strings, mirroring the trace counter
//! namespace:
//!
//! | site                  | fires inside                                |
//! |-----------------------|---------------------------------------------|
//! | `parse/read`          | `units_syntax::parse_file`                  |
//! | `check/program`       | `units_check::check_program`                |
//! | `reduce/step`         | each Fig. 11 contraction                    |
//! | `reduce/merge`        | the Fig. 11 `compound` merge                |
//! | `reduce/store`        | Fig. 11 store operations (`set!`, cell refs)|
//! | `reduce/prim`         | δ-rule application (reference reducer)      |
//! | `runtime/prim`        | prim application (compiled backend)         |
//! | `compile/eval`        | §4.1.6 `evaluate_program` entry             |
//! | `compile/instantiate` | §4.1.6 `invoke_unit`                        |
//! | `compile/dynlink`     | §3.4 `Archive::load`                        |
//! | `compile/artifact`    | §2 artifact publish/load                    |
//! | `vm/dispatch`         | bytecode VM chunk entry / unit invocation   |
//! | `store/read`          | persistent-store entry read (transient I/O) |
//! | `store/write`         | between temp-file write and atomic rename   |
//!
//! # Feature gating
//!
//! Exactly like the trace hooks in the crate root: the types here
//! always compile, but [`trip`] and the arm/disarm dispatch are live
//! only with the `faults` cargo feature. Without it, [`trip`] is an
//! `#[inline(always)]` `Ok(())` and the whole plane costs nothing —
//! [`COMPILED`] tells a caller which build it got.
//!
//! # Example
//!
//! ```
//! use units_trace::faults::{self, FaultPlane};
//!
//! faults::arm(FaultPlane::seeded(7).trigger("demo/site", 2));
//! let first = faults::trip("demo/site");
//! let second = faults::trip("demo/site");
//! if units_trace::faults::COMPILED {
//!     assert!(first.is_ok());
//!     assert_eq!(second.unwrap_err().hit, 2);
//! } else {
//!     assert!(first.is_ok() && second.is_ok());
//! }
//! faults::disarm();
//! ```

use std::fmt;

/// `true` when this build carries a live fault plane (the `faults`
/// cargo feature). When `false`, [`trip`] never fires regardless of
/// [`arm`] calls.
pub const COMPILED: bool = cfg!(feature = "faults");

/// What an armed [`FaultPlane`] does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FaultKind {
    /// [`trip`] returns `Err(Injected)` — exercises typed error
    /// propagation through the pipeline.
    #[default]
    Error,
    /// [`trip`] panics — exercises the `catch_unwind` isolation
    /// boundaries around the Engine and its worker pool.
    Panic,
}

/// A fault that an armed [`FaultPlane`] injected at a [`trip`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Injected {
    /// The injection-point name that fired (e.g. `"reduce/prim"`).
    pub site: &'static str,
    /// The 1-based count of [`trip`] calls at this site when it fired.
    pub hit: u64,
}

impl fmt::Display for Injected {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "injected fault at {} (hit {})", self.site, self.hit)
    }
}

impl std::error::Error for Injected {}

/// The record of one fault an armed plane fired, kept in the plane's
/// log so a chaos harness can see exactly what happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fired {
    /// The injection point that fired.
    pub site: &'static str,
    /// The 1-based per-site hit count at firing time.
    pub hit: u64,
    /// Whether the firing surfaced as an error or a panic.
    pub kind: FaultKind,
}

/// A seeded, deterministic schedule of faults.
///
/// Two ways to fire:
///
/// * **Stochastic** (default): every [`trip`] draws from a SplitMix64
///   stream seeded by [`FaultPlane::seeded`]; the fault fires with
///   probability `rate_per_mille / 1000`, at most `budget` times.
/// * **Explicit**: [`FaultPlane::trigger`] pins the schedule to the
///   nth hit of one named site, bypassing the stream entirely.
///
/// Both are fully deterministic in the seed and the trip sequence.
#[derive(Debug, Clone)]
pub struct FaultPlane {
    seed: u64,
    rate_per_mille: u32,
    kind: FaultKind,
    budget: u64,
    site_filter: Option<String>,
    explicit: Option<(String, u64)>,
    state: u64,
    site_hits: Vec<(&'static str, u64)>,
    fired: Vec<Fired>,
}

impl FaultPlane {
    /// A plane firing [`FaultKind::Error`] faults at 20‰ per trip with
    /// a budget of one fault. Equal seeds replay identically.
    pub fn seeded(seed: u64) -> FaultPlane {
        FaultPlane {
            seed,
            rate_per_mille: 20,
            kind: FaultKind::Error,
            budget: 1,
            site_filter: None,
            explicit: None,
            state: seed,
            site_hits: Vec::new(),
            fired: Vec::new(),
        }
    }

    /// Sets the per-trip firing probability in parts per thousand
    /// (clamped to 1000). `0` disables stochastic firing.
    pub fn rate_per_mille(mut self, rate: u32) -> FaultPlane {
        self.rate_per_mille = rate.min(1000);
        self
    }

    /// Sets what a firing does: typed error or panic.
    pub fn kind(mut self, kind: FaultKind) -> FaultPlane {
        self.kind = kind;
        self
    }

    /// Sets the maximum number of faults this plane may fire.
    pub fn budget(mut self, budget: u64) -> FaultPlane {
        self.budget = budget;
        self
    }

    /// Restricts firing to sites whose name starts with `prefix`
    /// (e.g. `"reduce/"` for the Fig. 11 reducer only).
    pub fn at_site(mut self, prefix: impl Into<String>) -> FaultPlane {
        self.site_filter = Some(prefix.into());
        self
    }

    /// Pins the schedule: fire exactly at the `nth` (1-based) [`trip`]
    /// of `site`, ignoring the stochastic stream.
    pub fn trigger(mut self, site: impl Into<String>, nth: u64) -> FaultPlane {
        self.explicit = Some((site.into(), nth.max(1)));
        self
    }

    /// A fresh plane with the same schedule configuration (rate, kind,
    /// budget, filters) but a new seed, empty hit counters, and an empty
    /// fired log. The Engine's worker pool uses this to arm each batch
    /// job with `seed ^ job-index`, so every job's schedule is
    /// deterministic in the job alone, independent of thread scheduling.
    pub fn reseeded(mut self, seed: u64) -> FaultPlane {
        self.seed = seed;
        self.state = seed;
        self.site_hits.clear();
        self.fired.clear();
        self
    }

    /// The seed this plane was built from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Every fault this plane has fired so far, in order.
    pub fn fired(&self) -> &[Fired] {
        &self.fired
    }

    /// Total [`trip`] calls observed across all sites.
    pub fn trips(&self) -> u64 {
        self.site_hits.iter().map(|&(_, n)| n).sum()
    }

    fn next_u64(&mut self) -> u64 {
        // SplitMix64 (Steele, Lea & Flood, OOPSLA 2014) — the same
        // stream as bench::SplitMix64, inlined because this crate has
        // no dependencies.
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Records one [`trip`] at `site` and decides whether it fires.
    /// Exposed so a harness can drive a plane without arming it.
    pub fn roll(&mut self, site: &'static str) -> Option<Fired> {
        let hit = match self.site_hits.iter_mut().find(|(s, _)| *s == site) {
            Some((_, n)) => {
                *n += 1;
                *n
            }
            None => {
                self.site_hits.push((site, 1));
                1
            }
        };
        if self.fired.len() as u64 >= self.budget {
            return None;
        }
        if let Some(prefix) = &self.site_filter {
            if !site.starts_with(prefix.as_str()) {
                return None;
            }
        }
        let fires = match &self.explicit {
            Some((target, nth)) => site == target && hit == *nth,
            None => {
                self.rate_per_mille > 0
                    && self.next_u64() % 1000 < u64::from(self.rate_per_mille)
            }
        };
        if !fires {
            return None;
        }
        let record = Fired { site, hit, kind: self.kind };
        self.fired.push(record);
        Some(record)
    }
}

#[cfg(feature = "faults")]
mod dispatch {
    use std::cell::RefCell;

    use super::{FaultKind, FaultPlane, Injected};

    thread_local! {
        static PLANE: RefCell<Option<FaultPlane>> = const { RefCell::new(None) };
    }

    /// Arms `plane` on the current thread; subsequent [`trip`] calls on
    /// this thread consult it until [`disarm`].
    pub fn arm(plane: FaultPlane) {
        PLANE.with(|p| *p.borrow_mut() = Some(plane));
    }

    /// Disarms the current thread's plane, returning it (with its fired
    /// log and hit counters) for inspection.
    pub fn disarm() -> Option<FaultPlane> {
        PLANE.with(|p| p.borrow_mut().take())
    }

    /// Whether a plane is armed on this thread.
    pub fn active() -> bool {
        PLANE.with(|p| p.borrow().is_some())
    }

    /// One named injection point. Returns `Err` when an armed
    /// [`FaultKind::Error`] schedule fires here, panics when a
    /// [`FaultKind::Panic`] schedule fires, and is `Ok(())` otherwise.
    pub fn trip(site: &'static str) -> Result<(), Injected> {
        let fired =
            PLANE.with(|p| p.borrow_mut().as_mut().and_then(|plane| plane.roll(site)));
        match fired {
            None => Ok(()),
            Some(f) => {
                // In trace builds, leave the trip site in the flight
                // recorder so a post-mortem dump names it even after
                // the error has been wrapped by recovery layers.
                #[cfg(feature = "trace")]
                crate::recorder::record(&crate::Event {
                    phase: crate::Phase::Engine,
                    kind: "fault/fired",
                    span: None,
                    payload: format!("{} (hit {})", f.site, f.hit),
                    counters: Vec::new(),
                });
                match f.kind {
                    FaultKind::Error => Err(Injected { site: f.site, hit: f.hit }),
                    FaultKind::Panic => {
                        panic!("injected panic at {} (hit {})", f.site, f.hit)
                    }
                }
            }
        }
    }

    /// Installs (once, process-wide) a panic hook that suppresses the
    /// default "thread panicked" report whenever a fault plane is armed
    /// on the panicking thread — injected panics are expected there,
    /// and a chaos sweep would otherwise spray hundreds of backtraces.
    /// Panics on threads with no plane armed keep the previous hook's
    /// behavior.
    pub fn install_quiet_hook() {
        static ONCE: std::sync::Once = std::sync::Once::new();
        ONCE.call_once(|| {
            let previous = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                if !active() {
                    previous(info);
                }
            }));
        });
    }

    /// Runs `f` with the current thread's plane suspended, restoring it
    /// afterwards (also on panic). Recovery paths — fallback runs,
    /// divergence diagnosis — use this so their re-execution is clean.
    pub fn pause<R>(f: impl FnOnce() -> R) -> R {
        struct Restore(Option<FaultPlane>);
        impl Drop for Restore {
            fn drop(&mut self) {
                let prev = self.0.take();
                PLANE.with(|p| *p.borrow_mut() = prev);
            }
        }

        let previous = PLANE.with(|p| p.borrow_mut().take());
        let _restore = Restore(previous);
        f()
    }
}

#[cfg(not(feature = "faults"))]
mod dispatch {
    //! No-op hooks: the shapes of the live API with empty bodies.

    use super::{FaultPlane, Injected};

    /// No-op without the `faults` feature.
    #[inline(always)]
    pub fn arm(_plane: FaultPlane) {}

    /// Always `None` without the `faults` feature.
    #[inline(always)]
    pub fn disarm() -> Option<FaultPlane> {
        None
    }

    /// Always `false` without the `faults` feature.
    #[inline(always)]
    pub fn active() -> bool {
        false
    }

    /// Always `Ok(())` without the `faults` feature.
    #[inline(always)]
    pub fn trip(_site: &'static str) -> Result<(), Injected> {
        Ok(())
    }

    /// No-op without the `faults` feature.
    #[inline(always)]
    pub fn install_quiet_hook() {}

    /// Runs `f` directly without the `faults` feature.
    #[inline(always)]
    pub fn pause<R>(f: impl FnOnce() -> R) -> R {
        f()
    }
}

pub use dispatch::{active, arm, disarm, install_quiet_hook, pause, trip};

#[cfg(all(test, feature = "faults"))]
mod tests {
    use super::*;

    #[test]
    fn explicit_trigger_fires_on_the_named_hit_only() {
        arm(FaultPlane::seeded(1).trigger("a/b", 3));
        assert!(trip("a/b").is_ok());
        assert!(trip("other").is_ok());
        assert!(trip("a/b").is_ok());
        let fault = trip("a/b").unwrap_err();
        assert_eq!(fault, Injected { site: "a/b", hit: 3 });
        // Budget of one: the schedule is spent.
        assert!(trip("a/b").is_ok());
        let plane = disarm().unwrap();
        assert_eq!(plane.fired().len(), 1);
        assert_eq!(plane.trips(), 5);
    }

    #[test]
    fn stochastic_schedule_replays_identically() {
        let run = |seed: u64| {
            arm(FaultPlane::seeded(seed).rate_per_mille(200).budget(u64::MAX));
            let pattern: Vec<bool> = (0..200).map(|_| trip("x/y").is_err()).collect();
            disarm();
            pattern
        };
        let first = run(42);
        assert_eq!(first, run(42), "same seed, same schedule");
        assert!(first.iter().any(|&b| b), "a 20% schedule fires within 200 trips");
        assert!(first.iter().any(|&b| !b));
    }

    #[test]
    fn site_filter_and_budget_bound_the_blast_radius() {
        arm(
            FaultPlane::seeded(9)
                .rate_per_mille(1000)
                .budget(2)
                .at_site("reduce/"),
        );
        assert!(trip("parse/read").is_ok(), "filtered site never fires");
        assert!(trip("reduce/step").is_err());
        assert!(trip("reduce/prim").is_err());
        assert!(trip("reduce/step").is_ok(), "budget exhausted");
        let plane = disarm().unwrap();
        assert_eq!(plane.fired().len(), 2);
    }

    #[test]
    fn panic_kind_panics_and_pause_suspends() {
        arm(FaultPlane::seeded(3).kind(FaultKind::Panic).trigger("p/q", 1));
        pause(|| {
            assert!(!active(), "plane suspended inside pause");
            assert!(trip("p/q").is_ok());
        });
        assert!(active(), "plane restored after pause");
        let caught = std::panic::catch_unwind(|| {
            let _ = trip("p/q");
        });
        let payload = caught.unwrap_err();
        let message = payload.downcast_ref::<String>().unwrap();
        assert_eq!(message, "injected panic at p/q (hit 1)");
        disarm();
    }

    #[test]
    fn unarmed_trips_are_free() {
        assert!(!active());
        assert!(trip("anything").is_ok());
    }
}
