//! Structured tracing and metrics for the Units pipeline — the
//! observability layer behind `:trace`/`:stats`/`:profile`, divergence
//! diagnosis, and `BENCH_trace.json`.
//!
//! # Architecture
//!
//! * [`Event`] — a deterministic record of one interesting step
//!   (a Fig. 11 redex firing, a prim call, a unit being linked), tagged
//!   with its pipeline [`Phase`] and optional source [`Span`].
//! * [`TraceSink`] — where events go: [`NullSink`] (drop),
//!   [`CollectSink`] (buffer), [`JsonLinesSink`] (stream as JSON).
//! * [`Metrics`] — thread-safe monotonic counters plus duration
//!   histograms (with derived p50/p99) and a bounded span log that
//!   exports as a Chrome-trace timeline. Wall-clock data lives *only*
//!   here; events carry no timestamps so two runs of one program yield
//!   identical streams.
//! * [`recorder`] — the flight recorder: a thread-local ring of the
//!   most recent events, dumped as a JSON-lines post-mortem on failure.
//! * The dispatch layer below — [`install`]/[`uninstall`] bind a sink
//!   and a metrics registry to the current thread; [`emit`], [`count`]
//!   and [`time`] are the hooks the pipeline crates call.
//!
//! # Feature gating
//!
//! The types above always compile. The *hooks* are live only with the
//! `trace` cargo feature; without it they are empty `#[inline]`
//! functions with identical signatures, so instrumented call sites look
//! the same in both builds and cost nothing in release binaries
//! (verified by the `invoke_backends` bench). [`COMPILED`] tells a
//! caller at runtime which build it got.
//!
//! # Example
//!
//! ```
//! use units_trace::{capture, count, emit, Phase};
//!
//! let (result, events) = capture(|| {
//!     count("demo/widgets", 2);
//!     emit(Phase::Eval, "demo", None, || "hello".to_string(), &[("demo/evts", 1)]);
//!     21 * 2
//! });
//! assert_eq!(result, 42);
//! if units_trace::COMPILED {
//!     assert_eq!(events.len(), 1);
//!     assert_eq!(events[0].kind, "demo");
//! } else {
//!     assert!(events.is_empty());
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
pub mod faults;
pub mod json;
mod metrics;
pub mod recorder;
mod sink;

pub use event::{Event, Phase, Span};
pub use metrics::{DurationStats, Metrics, SpanRecord, DURATION_BUCKETS, SPAN_CAPACITY};
pub use recorder::{FlightDump, FlightRecorder};
pub use sink::{CollectSink, JsonLinesSink, NullSink, TraceSink};

/// `true` when this build carries live instrumentation (the `trace`
/// cargo feature). When `false`, every hook in this module is a no-op
/// regardless of [`install`] calls.
pub const COMPILED: bool = cfg!(feature = "trace");

#[cfg(feature = "trace")]
mod dispatch {
    use std::cell::RefCell;
    use std::rc::Rc;
    use std::sync::Arc;
    use std::time::Instant;

    use crate::event::{Event, Phase, Span};
    use crate::metrics::Metrics;
    use crate::sink::{CollectSink, TraceSink};

    struct Session {
        sink: Rc<RefCell<dyn TraceSink>>,
        metrics: Arc<Metrics>,
        wants_events: bool,
    }

    thread_local! {
        static SESSION: RefCell<Option<Session>> = const { RefCell::new(None) };
    }

    /// Binds `sink` and `metrics` to the current thread; subsequent
    /// hook calls on this thread feed them until [`uninstall`].
    pub fn install(sink: Rc<RefCell<dyn TraceSink>>, metrics: Arc<Metrics>) {
        let wants_events = sink.borrow().wants_events();
        SESSION.with(|s| {
            *s.borrow_mut() = Some(Session { sink, metrics, wants_events });
        });
    }

    /// Unbinds the current thread's session, if any.
    pub fn uninstall() {
        SESSION.with(|s| *s.borrow_mut() = None);
    }

    /// Whether a session is installed on this thread.
    pub fn active() -> bool {
        SESSION.with(|s| s.borrow().is_some())
    }

    /// The installed session's metrics registry, if any.
    pub fn metrics() -> Option<Arc<Metrics>> {
        SESSION.with(|s| s.borrow().as_ref().map(|sess| sess.metrics.clone()))
    }

    /// Emits one event and folds its `counters` into the metrics.
    ///
    /// `payload` is only rendered when the sink wants events or the
    /// [`crate::recorder`] is active, so tracing with a
    /// [`crate::NullSink`] skips all string building. The flight
    /// recorder sees events even when no session is installed at all.
    pub fn emit(
        phase: Phase,
        kind: &'static str,
        span: Option<Span>,
        payload: impl FnOnce() -> String,
        counters: &[(&'static str, u64)],
    ) {
        // Clone the handles out so the thread-local borrow is released
        // before user code (payload closure, sink) runs — a sink is
        // free to call `count` without deadlocking the RefCell.
        let session = SESSION.with(|s| {
            s.borrow()
                .as_ref()
                .map(|sess| (sess.sink.clone(), sess.metrics.clone(), sess.wants_events))
        });
        let recording = crate::recorder::is_recording();
        let Some((sink, metrics, wants_events)) = session else {
            if recording {
                let event =
                    Event { phase, kind, span, payload: payload(), counters: counters.to_vec() };
                crate::recorder::record(&event);
            }
            return;
        };
        for &(name, delta) in counters {
            metrics.add(name, delta);
        }
        if wants_events || recording {
            let event =
                Event { phase, kind, span, payload: payload(), counters: counters.to_vec() };
            if recording {
                crate::recorder::record(&event);
            }
            if wants_events {
                sink.borrow_mut().event(&event);
            }
        }
    }

    /// Adds `delta` to the counter `name` on the installed metrics.
    pub fn count(name: &'static str, delta: u64) {
        SESSION.with(|s| {
            if let Some(sess) = s.borrow().as_ref() {
                sess.metrics.add(name, delta);
            }
        });
    }

    /// Adds `delta` to the labeled counter `name{label}` on the
    /// installed metrics — for label values only known at runtime
    /// (tenant names, plug-in names).
    pub fn count_labeled(name: &'static str, label: &str, delta: u64) {
        SESSION.with(|s| {
            if let Some(sess) = s.borrow().as_ref() {
                sess.metrics.add_labeled(name, label, delta);
            }
        });
    }

    /// A running timer; records into the duration histogram on drop.
    #[must_use = "a Timer records its duration when dropped"]
    pub struct Timer {
        running: Option<(Arc<Metrics>, &'static str, Instant)>,
    }

    /// Starts timing `name`. Costs nothing when no session is
    /// installed (no clock read).
    pub fn time(name: &'static str) -> Timer {
        let running = metrics().map(|m| (m, name, Instant::now()));
        Timer { running }
    }

    impl Drop for Timer {
        fn drop(&mut self) {
            if let Some((metrics, name, start)) = self.running.take() {
                let elapsed = start.elapsed();
                metrics.record_duration(name, elapsed);
                metrics.record_span(name, start, elapsed);
            }
        }
    }

    /// Runs `f` under a fresh [`CollectSink`] session and returns its
    /// result together with the captured events. Any previously
    /// installed session is suspended and restored afterwards (also on
    /// panic).
    pub fn capture<R>(f: impl FnOnce() -> R) -> (R, Vec<Event>) {
        struct Restore(Option<Session>);
        impl Drop for Restore {
            fn drop(&mut self) {
                let prev = self.0.take();
                SESSION.with(|s| *s.borrow_mut() = prev);
            }
        }

        let previous = SESSION.with(|s| s.borrow_mut().take());
        let _restore = Restore(previous);
        let sink = Rc::new(RefCell::new(CollectSink::new()));
        install(sink.clone(), Arc::new(Metrics::new()));
        let result = f();
        uninstall();
        let events = sink.borrow_mut().take_events();
        (result, events)
    }
}

#[cfg(not(feature = "trace"))]
mod dispatch {
    //! No-op hooks: the shapes of the live API with empty bodies.

    use std::cell::RefCell;
    use std::rc::Rc;
    use std::sync::Arc;

    use crate::event::{Event, Phase, Span};
    use crate::metrics::Metrics;
    use crate::sink::TraceSink;

    /// No-op without the `trace` feature.
    #[inline(always)]
    pub fn install(_sink: Rc<RefCell<dyn TraceSink>>, _metrics: Arc<Metrics>) {}

    /// No-op without the `trace` feature.
    #[inline(always)]
    pub fn uninstall() {}

    /// Always `false` without the `trace` feature.
    #[inline(always)]
    pub fn active() -> bool {
        false
    }

    /// Always `None` without the `trace` feature.
    #[inline(always)]
    pub fn metrics() -> Option<Arc<Metrics>> {
        None
    }

    /// No-op without the `trace` feature; `payload` is never called.
    #[inline(always)]
    pub fn emit(
        _phase: Phase,
        _kind: &'static str,
        _span: Option<Span>,
        _payload: impl FnOnce() -> String,
        _counters: &[(&'static str, u64)],
    ) {
    }

    /// No-op without the `trace` feature.
    #[inline(always)]
    pub fn count(_name: &'static str, _delta: u64) {}

    /// No-op without the `trace` feature.
    #[inline(always)]
    pub fn count_labeled(_name: &'static str, _label: &str, _delta: u64) {}

    /// Inert timer handle without the `trace` feature.
    pub struct Timer;

    /// No-op without the `trace` feature (no clock read).
    #[inline(always)]
    pub fn time(_name: &'static str) -> Timer {
        Timer
    }

    /// Runs `f`; the event list is always empty without the `trace`
    /// feature.
    #[inline(always)]
    pub fn capture<R>(f: impl FnOnce() -> R) -> (R, Vec<Event>) {
        (f(), Vec::new())
    }
}

pub use dispatch::{
    active, capture, count, count_labeled, emit, install, metrics, time, uninstall, Timer,
};

#[cfg(all(test, feature = "trace"))]
mod tests {
    use std::cell::RefCell;
    use std::rc::Rc;
    use std::sync::Arc;

    use super::*;

    #[test]
    fn hooks_are_inert_without_a_session() {
        assert!(!active());
        assert!(metrics().is_none());
        emit(Phase::Eval, "k", None, || unreachable!("payload must not render"), &[]);
        count("x", 1);
        let _t = time("y");
    }

    #[test]
    fn install_routes_events_and_counters() {
        let sink = Rc::new(RefCell::new(CollectSink::new()));
        let registry = Arc::new(Metrics::new());
        install(sink.clone(), registry.clone());
        emit(Phase::Reduce, "step/beta", None, String::new, &[("reduce/steps", 1)]);
        count("reduce/steps", 2);
        count_labeled("serve/requests", "tenant-a", 4);
        {
            let _t = time("reduce");
        }
        uninstall();
        assert!(!active());
        assert_eq!(sink.borrow().events().len(), 1);
        assert_eq!(registry.counter("reduce/steps"), 3);
        assert_eq!(registry.labeled_counter("serve/requests", "tenant-a"), 4);
        assert_eq!(registry.durations()["reduce"].count, 1);
    }

    #[test]
    fn null_sink_skips_payload_rendering_but_keeps_counters() {
        let registry = Arc::new(Metrics::new());
        install(Rc::new(RefCell::new(NullSink)), registry.clone());
        emit(Phase::Eval, "prim", None, || unreachable!("NullSink must not render"), &[
            ("prim/calls", 1),
        ]);
        uninstall();
        assert_eq!(registry.counter("prim/calls"), 1);
    }

    #[test]
    fn capture_restores_the_previous_session() {
        let outer = Rc::new(RefCell::new(CollectSink::new()));
        install(outer.clone(), Arc::new(Metrics::new()));
        let ((), inner_events) = capture(|| {
            emit(Phase::Eval, "inner", None, String::new, &[]);
        });
        assert_eq!(inner_events.len(), 1);
        assert!(active(), "outer session restored");
        emit(Phase::Eval, "outer", None, String::new, &[]);
        uninstall();
        let outer_kinds: Vec<_> = outer.borrow().events().iter().map(|e| e.kind).collect();
        assert_eq!(outer_kinds, vec!["outer"]);
    }
}
