//! Where events go: the [`TraceSink`] trait and its three stock
//! implementations.

use std::io::Write;

use crate::event::Event;

/// A consumer of trace events.
///
/// Sinks receive events synchronously on the emitting thread, in
/// emission order.
pub trait TraceSink {
    /// Handles one event.
    fn event(&mut self, event: &Event);

    /// Whether this sink actually looks at events. Sinks that return
    /// `false` (like [`NullSink`]) let emitters skip building the
    /// payload entirely, so a trace-enabled build with a null sink does
    /// no per-event work beyond counter updates.
    fn wants_events(&self) -> bool {
        true
    }
}

/// Discards every event. Metrics still accumulate.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn event(&mut self, _event: &Event) {}

    fn wants_events(&self) -> bool {
        false
    }
}

/// Buffers every event in memory, for tests and post-hoc diagnosis.
#[derive(Debug, Default)]
pub struct CollectSink {
    events: Vec<Event>,
}

impl CollectSink {
    /// An empty collector.
    pub fn new() -> CollectSink {
        CollectSink::default()
    }

    /// The events collected so far.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Removes and returns everything collected so far.
    pub fn take_events(&mut self) -> Vec<Event> {
        std::mem::take(&mut self.events)
    }
}

impl TraceSink for CollectSink {
    fn event(&mut self, event: &Event) {
        self.events.push(event.clone());
    }
}

/// Writes each event as one JSON object per line (JSON-lines).
///
/// Write errors are swallowed — tracing must never turn a working
/// program run into a failing one.
#[derive(Debug)]
pub struct JsonLinesSink<W: Write> {
    out: W,
}

impl<W: Write> JsonLinesSink<W> {
    /// Wraps a writer.
    pub fn new(out: W) -> JsonLinesSink<W> {
        JsonLinesSink { out }
    }

    /// Unwraps the inner writer.
    pub fn into_inner(self) -> W {
        self.out
    }
}

impl<W: Write> TraceSink for JsonLinesSink<W> {
    fn event(&mut self, event: &Event) {
        let _ = writeln!(self.out, "{}", event.to_json());
        let _ = self.out.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Phase;

    fn sample(kind: &'static str) -> Event {
        Event { phase: Phase::Eval, kind, span: None, payload: "p".into(), counters: vec![] }
    }

    #[test]
    fn collect_sink_keeps_order() {
        let mut sink = CollectSink::new();
        sink.event(&sample("a"));
        sink.event(&sample("b"));
        let events: Vec<_> = sink.take_events().into_iter().map(|e| e.kind).collect();
        assert_eq!(events, vec!["a", "b"]);
        assert!(sink.events().is_empty());
    }

    #[test]
    fn null_sink_declines_events() {
        assert!(!NullSink.wants_events());
        assert!(CollectSink::new().wants_events());
    }

    #[test]
    fn json_lines_sink_writes_one_valid_line_per_event() {
        let mut sink = JsonLinesSink::new(Vec::new());
        sink.event(&sample("a"));
        sink.event(&sample("b"));
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let lines: Vec<_> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            crate::json::validate(line).unwrap();
        }
    }
}
