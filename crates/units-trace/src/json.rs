//! A minimal JSON writer/validator so the workspace can emit and
//! self-check machine-readable output with zero dependencies.
//!
//! The writer side is just [`escape`] (every control character is
//! `\u00XX`-escaped, not only the named ones); producers assemble
//! objects by hand (see [`crate::Event::to_json`] and `bench`'s
//! `tables --json`). [`unescape`] is its exact inverse, so tests can
//! prove round-trip fidelity over adversarial payloads. The validator
//! is a strict recursive-descent parser over the full JSON grammar —
//! enough to assert that what we wrote is what a real consumer can
//! read, without pulling in serde.

use std::fmt;

/// Escapes `s` as a JSON string literal, including the quotes.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Decodes a JSON string literal (including the surrounding quotes)
/// back into the text it encodes — the inverse of [`escape`], accepting
/// any escape the JSON grammar allows (`\n`, `\u00XX`, surrogate
/// pairs, …), so `unescape(&escape(s)) == Ok(s)` for every `s`.
///
/// # Errors
///
/// Returns a [`JsonError`] when `src` is not exactly one well-formed
/// string literal (bad escape, lone surrogate, unescaped control
/// character, trailing data).
pub fn unescape(src: &str) -> Result<String, JsonError> {
    let bytes = src.as_bytes();
    let err = |offset: usize, message: &str| JsonError { offset, message: message.to_string() };
    if bytes.first() != Some(&b'"') {
        return Err(err(0, "expected `\"`"));
    }
    let mut out = String::with_capacity(src.len().saturating_sub(2));
    let mut chars = src.char_indices();
    chars.next(); // the opening quote
    // Reads one `\uXXXX` code unit; `i` is the backslash's offset.
    let hex4 = |chars: &mut std::str::CharIndices<'_>, i: usize| -> Result<u16, JsonError> {
        let mut unit = 0u16;
        for _ in 0..4 {
            let Some((_, c)) = chars.next() else {
                return Err(err(i, "truncated \\u escape"));
            };
            let digit =
                c.to_digit(16).ok_or_else(|| err(i, "invalid \\u escape"))? as u16;
            unit = unit << 4 | digit;
        }
        Ok(unit)
    };
    while let Some((i, c)) = chars.next() {
        match c {
            '"' => {
                return if chars.next().is_none() {
                    Ok(out)
                } else {
                    Err(err(i + 1, "trailing characters after the string"))
                };
            }
            '\\' => {
                let Some((_, esc)) = chars.next() else {
                    return Err(err(i, "truncated escape"));
                };
                match esc {
                    '"' => out.push('"'),
                    '\\' => out.push('\\'),
                    '/' => out.push('/'),
                    'b' => out.push('\u{8}'),
                    'f' => out.push('\u{c}'),
                    'n' => out.push('\n'),
                    'r' => out.push('\r'),
                    't' => out.push('\t'),
                    'u' => {
                        let unit = hex4(&mut chars, i)?;
                        if (0xD800..=0xDBFF).contains(&unit) {
                            // High surrogate: a `\uDC00..DFFF` low half
                            // must follow immediately.
                            match (chars.next(), chars.next()) {
                                (Some((_, '\\')), Some((_, 'u'))) => {
                                    let low = hex4(&mut chars, i)?;
                                    if !(0xDC00..=0xDFFF).contains(&low) {
                                        return Err(err(i, "invalid low surrogate"));
                                    }
                                    let scalar = 0x10000
                                        + ((unit as u32 - 0xD800) << 10)
                                        + (low as u32 - 0xDC00);
                                    out.push(
                                        char::from_u32(scalar)
                                            .ok_or_else(|| err(i, "invalid surrogate pair"))?,
                                    );
                                }
                                _ => return Err(err(i, "lone high surrogate")),
                            }
                        } else if (0xDC00..=0xDFFF).contains(&unit) {
                            return Err(err(i, "lone low surrogate"));
                        } else {
                            out.push(
                                char::from_u32(unit as u32)
                                    .ok_or_else(|| err(i, "invalid \\u escape"))?,
                            );
                        }
                    }
                    _ => return Err(err(i, "invalid escape character")),
                }
            }
            c if (c as u32) < 0x20 => {
                return Err(err(i, "unescaped control character in string"));
            }
            c => out.push(c),
        }
    }
    Err(err(src.len(), "unterminated string"))
}

/// Where and why a validation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the offending character.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Checks that `src` is exactly one valid JSON value (with optional
/// surrounding whitespace).
///
/// # Errors
///
/// Returns a [`JsonError`] locating the first violation.
pub fn validate(src: &str) -> Result<(), JsonError> {
    let mut p = Parser { bytes: src.as_bytes(), pos: 0 };
    p.skip_ws();
    p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the JSON value"));
    }
    Ok(())
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError { offset: self.pos, message: message.to_string() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", byte as char)))
        }
    }

    fn literal(&mut self, word: &str) -> Result<(), JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<(), JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("expected a JSON value")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<(), JsonError> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<(), JsonError> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<(), JsonError> {
        self.expect(b'"')?;
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(());
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {
                            self.pos += 1;
                        }
                        Some(b'u') => {
                            self.pos += 1;
                            for _ in 0..4 {
                                if !matches!(
                                    self.peek(),
                                    Some(b'0'..=b'9' | b'a'..=b'f' | b'A'..=b'F')
                                ) {
                                    return Err(self.err("invalid \\u escape"));
                                }
                                self.pos += 1;
                            }
                        }
                        _ => return Err(self.err("invalid escape character")),
                    }
                }
                Some(c) if c < 0x20 => {
                    return Err(self.err("unescaped control character in string"));
                }
                Some(_) => self.pos += 1,
            }
        }
    }

    fn number(&mut self) -> Result<(), JsonError> {
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("expected a digit")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected a digit after `.`"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected a digit in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_the_grammar() {
        for ok in [
            "null",
            "true",
            " false ",
            "0",
            "-12.5e+3",
            "\"a\\n\\u00e9\"",
            "[]",
            "[1, [2, {\"k\": null}]]",
            "{\"a\": 1, \"b\": [true, \"x\"]}",
        ] {
            validate(ok).unwrap_or_else(|e| panic!("{ok}: {e}"));
        }
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in
            ["", "tru", "01", "1.", "[1,]", "{\"a\" 1}", "{a: 1}", "\"unterminated", "{} {}"]
        {
            assert!(validate(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn escape_round_trips_through_validate() {
        let nasty = "a\"b\\c\nd\te\u{1}f — π";
        validate(&escape(nasty)).unwrap();
    }

    /// Adversarial payloads: every control character, the quoting
    /// characters, DEL, line/paragraph separators, astral-plane text.
    /// `escape` must produce a literal that both validates and decodes
    /// back to the original, byte for byte.
    #[test]
    fn escape_unescape_round_trips_adversarial_payloads() {
        let mut all_controls = String::new();
        for c in 0u32..0x20 {
            all_controls.push(char::from_u32(c).unwrap());
        }
        let payloads = [
            all_controls.as_str(),
            "\u{0}embedded\u{0}nuls\u{0}",
            "quotes \" and \\ backslashes \\\" mixed",
            "\\u0000 (a literal escape sequence, not a control)",
            "\u{7f}\u{80}\u{9f}", // DEL and C1 controls pass through raw
            "\u{2028}line sep\u{2029}paragraph sep",
            "π ≠ 𝄞 😀 — astral pairs",
            "",
        ];
        for payload in payloads {
            let literal = escape(payload);
            validate(&literal).unwrap_or_else(|e| panic!("{payload:?}: {e}"));
            assert_eq!(
                unescape(&literal).as_deref(),
                Ok(payload),
                "round trip mangled {payload:?}"
            );
        }
    }

    #[test]
    fn unescape_decodes_foreign_escapes() {
        // Escapes `escape` never emits but real JSON producers do.
        assert_eq!(unescape(r#""\/\b\f""#).unwrap(), "/\u{8}\u{c}");
        assert_eq!(unescape("\"\\ud834\\udd1e\"").unwrap(), "\u{1d11e}", "surrogate pair");
        assert_eq!(unescape("\"\\u00e9\\u2028\"").unwrap(), "\u{e9}\u{2028}");
    }

    #[test]
    fn unescape_rejects_malformed_literals() {
        for bad in [
            "",
            "x",
            "\"unterminated",
            "\"trailing\" x",
            r#""\q""#,
            r#""\u12""#,
            r#""\uZZZZ""#,
            r#""\ud834""#,        // lone high surrogate
            r#""\ud834A""#,  // high surrogate followed by a non-surrogate
            r#""\udd1e""#,        // lone low surrogate
            "\"raw\u{1}control\"",
        ] {
            assert!(unescape(bad).is_err(), "accepted: {bad:?}");
        }
    }
}
