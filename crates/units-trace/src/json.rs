//! A minimal JSON writer/validator so the workspace can emit and
//! self-check machine-readable output with zero dependencies.
//!
//! The writer side is just [`escape`]; producers assemble objects by
//! hand (see [`crate::Event::to_json`] and `bench`'s `tables --json`).
//! The validator is a strict recursive-descent parser over the full
//! JSON grammar — enough to assert that what we wrote is what a real
//! consumer can read, without pulling in serde.

use std::fmt;

/// Escapes `s` as a JSON string literal, including the quotes.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Where and why a validation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the offending character.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Checks that `src` is exactly one valid JSON value (with optional
/// surrounding whitespace).
///
/// # Errors
///
/// Returns a [`JsonError`] locating the first violation.
pub fn validate(src: &str) -> Result<(), JsonError> {
    let mut p = Parser { bytes: src.as_bytes(), pos: 0 };
    p.skip_ws();
    p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the JSON value"));
    }
    Ok(())
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError { offset: self.pos, message: message.to_string() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", byte as char)))
        }
    }

    fn literal(&mut self, word: &str) -> Result<(), JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<(), JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("expected a JSON value")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<(), JsonError> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<(), JsonError> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.value()?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<(), JsonError> {
        self.expect(b'"')?;
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(());
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {
                            self.pos += 1;
                        }
                        Some(b'u') => {
                            self.pos += 1;
                            for _ in 0..4 {
                                if !matches!(
                                    self.peek(),
                                    Some(b'0'..=b'9' | b'a'..=b'f' | b'A'..=b'F')
                                ) {
                                    return Err(self.err("invalid \\u escape"));
                                }
                                self.pos += 1;
                            }
                        }
                        _ => return Err(self.err("invalid escape character")),
                    }
                }
                Some(c) if c < 0x20 => {
                    return Err(self.err("unescaped control character in string"));
                }
                Some(_) => self.pos += 1,
            }
        }
    }

    fn number(&mut self) -> Result<(), JsonError> {
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("expected a digit")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected a digit after `.`"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("expected a digit in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_the_grammar() {
        for ok in [
            "null",
            "true",
            " false ",
            "0",
            "-12.5e+3",
            "\"a\\n\\u00e9\"",
            "[]",
            "[1, [2, {\"k\": null}]]",
            "{\"a\": 1, \"b\": [true, \"x\"]}",
        ] {
            validate(ok).unwrap_or_else(|e| panic!("{ok}: {e}"));
        }
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in
            ["", "tru", "01", "1.", "[1,]", "{\"a\" 1}", "{a: 1}", "\"unterminated", "{} {}"]
        {
            assert!(validate(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn escape_round_trips_through_validate() {
        let nasty = "a\"b\\c\nd\te\u{1}f — π";
        validate(&escape(nasty)).unwrap();
    }
}
