//! The flight recorder: a fixed-size ring buffer of the most recent
//! trace events, cheap enough to leave on for a whole session.
//!
//! Unlike a sink session (installed via [`crate::install`]), the
//! recorder never renders or writes anything while recording — it just
//! keeps the last `capacity` [`Event`]s on the current thread. When
//! something goes wrong (the engine surfaces an internal error, a
//! fault-plane recovery, or resource exhaustion), [`dump`] snapshots
//! the ring as a JSON-lines post-mortem ([`FlightDump`]) whose first
//! line is a metadata record naming the dump reason.
//!
//! Without the `trace` cargo feature every function here is an inlined
//! no-op ([`dump`] returns `None`), so the recorder costs nothing in
//! default builds.

use std::collections::VecDeque;

use crate::event::Event;

/// Ring capacity used by [`ensure`] when no recorder is active yet:
/// enough events to cover several Fig. 11 invoke sequences without
/// making dumps unreadable.
pub const DEFAULT_CAPACITY: usize = 256;

/// A snapshot of the flight recorder taken at failure time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightDump {
    /// Why the dump was taken — typically the failing error's display
    /// text, which names the trip site for injected faults.
    pub reason: String,
    /// How many events the dump holds.
    pub events: usize,
    /// Total events ever recorded by the ring (including overwritten).
    pub recorded: u64,
    /// How many older events the ring had already overwritten.
    pub dropped: u64,
    /// The post-mortem: one metadata JSON record, then one JSON object
    /// per event (oldest first), newline-separated.
    pub json_lines: String,
}

/// The ring buffer itself. Usually managed through the thread-local
/// helpers ([`enable`]/[`record`]/[`dump`]), but constructible directly
/// for tests and custom tooling.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    capacity: usize,
    buf: VecDeque<Event>,
    recorded: u64,
}

impl FlightRecorder {
    /// An empty ring keeping at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> FlightRecorder {
        let capacity = capacity.max(1);
        FlightRecorder { capacity, buf: VecDeque::with_capacity(capacity), recorded: 0 }
    }

    /// Appends one event, evicting the oldest when full.
    pub fn record(&mut self, event: &Event) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
        }
        self.buf.push_back(event.clone());
        self.recorded += 1;
    }

    /// Events currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether no events have been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The ring's capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total events ever recorded, including overwritten ones.
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// How many events have been overwritten by newer ones.
    pub fn dropped(&self) -> u64 {
        self.recorded - self.buf.len() as u64
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &Event> {
        self.buf.iter()
    }

    /// Clears the ring (capacity and totals survive for diagnostics).
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// Snapshots the ring as a [`FlightDump`]. The buffer is left
    /// intact so several failures in a row each get a post-mortem.
    pub fn dump(&self, reason: &str) -> FlightDump {
        let mut json_lines = format!(
            "{{\"flight\":\"dump\",\"reason\":{},\"events\":{},\"recorded\":{},\"dropped\":{}}}",
            crate::json::escape(reason),
            self.buf.len(),
            self.recorded,
            self.dropped()
        );
        for event in &self.buf {
            json_lines.push('\n');
            json_lines.push_str(&event.to_json());
        }
        FlightDump {
            reason: reason.to_string(),
            events: self.buf.len(),
            recorded: self.recorded,
            dropped: self.dropped(),
            json_lines,
        }
    }
}

#[cfg(feature = "trace")]
mod dispatch {
    use std::cell::RefCell;

    use super::{FlightDump, FlightRecorder};
    use crate::event::Event;

    thread_local! {
        static RECORDER: RefCell<Option<FlightRecorder>> = const { RefCell::new(None) };
    }

    /// Starts (or restarts) recording on this thread with the given
    /// ring capacity, discarding any previous recorder.
    pub fn enable(capacity: usize) {
        RECORDER.with(|r| *r.borrow_mut() = Some(FlightRecorder::new(capacity)));
    }

    /// Starts recording with `capacity` only if no recorder is active —
    /// the engine calls this on its run paths so trace builds always
    /// have a post-mortem ring without clobbering a caller's setup.
    pub fn ensure(capacity: usize) {
        RECORDER.with(|r| {
            let mut slot = r.borrow_mut();
            if slot.is_none() {
                *slot = Some(FlightRecorder::new(capacity));
            }
        });
    }

    /// Stops recording and returns the final ring, if any.
    pub fn disable() -> Option<FlightRecorder> {
        RECORDER.with(|r| r.borrow_mut().take())
    }

    /// Whether a recorder is active on this thread.
    pub fn is_recording() -> bool {
        RECORDER.with(|r| r.borrow().is_some())
    }

    /// Appends one event to the active ring (no-op when disabled).
    pub fn record(event: &Event) {
        RECORDER.with(|r| {
            if let Some(rec) = r.borrow_mut().as_mut() {
                rec.record(event);
            }
        });
    }

    /// Empties the active ring without disabling it.
    pub fn clear() {
        RECORDER.with(|r| {
            if let Some(rec) = r.borrow_mut().as_mut() {
                rec.clear();
            }
        });
    }

    /// Snapshots the active ring as a post-mortem, or `None` when no
    /// recorder is active. The ring keeps its events.
    pub fn dump(reason: &str) -> Option<FlightDump> {
        RECORDER.with(|r| r.borrow().as_ref().map(|rec| rec.dump(reason)))
    }
}

#[cfg(not(feature = "trace"))]
mod dispatch {
    use super::{FlightDump, FlightRecorder};
    use crate::event::Event;

    /// No-op without the `trace` feature.
    #[inline(always)]
    pub fn enable(_capacity: usize) {}

    /// No-op without the `trace` feature.
    #[inline(always)]
    pub fn ensure(_capacity: usize) {}

    /// Always `None` without the `trace` feature.
    #[inline(always)]
    pub fn disable() -> Option<FlightRecorder> {
        None
    }

    /// Always `false` without the `trace` feature.
    #[inline(always)]
    pub fn is_recording() -> bool {
        false
    }

    /// No-op without the `trace` feature.
    #[inline(always)]
    pub fn record(_event: &Event) {}

    /// No-op without the `trace` feature.
    #[inline(always)]
    pub fn clear() {}

    /// Always `None` without the `trace` feature.
    #[inline(always)]
    pub fn dump(_reason: &str) -> Option<FlightDump> {
        None
    }
}

pub use dispatch::{clear, disable, dump, enable, ensure, is_recording, record};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, Phase};

    fn event(kind: &'static str, payload: &str) -> Event {
        Event {
            phase: Phase::Engine,
            kind,
            span: None,
            payload: payload.to_string(),
            counters: Vec::new(),
        }
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let mut rec = FlightRecorder::new(3);
        for i in 0..5 {
            let payloads = ["a", "b", "c", "d", "e"];
            rec.record(&event("tick", payloads[i]));
        }
        assert_eq!(rec.len(), 3);
        assert_eq!(rec.recorded(), 5);
        assert_eq!(rec.dropped(), 2);
        let kept: Vec<_> = rec.events().map(|e| e.payload.as_str()).collect();
        assert_eq!(kept, ["c", "d", "e"], "oldest events evicted first");
    }

    #[test]
    fn dump_is_json_lines_with_a_meta_record() {
        let mut rec = FlightRecorder::new(8);
        rec.record(&event("fault/fired", "runtime/prim (hit 1)"));
        rec.record(&event("step/invoke1", "7"));
        let dump = rec.dump("injected fault at runtime/prim (hit 1)");
        assert_eq!(dump.events, 2);
        assert_eq!(dump.dropped, 0);
        let lines: Vec<_> = dump.json_lines.lines().collect();
        assert_eq!(lines.len(), 3, "meta record plus one line per event");
        for line in &lines {
            crate::json::validate(line).unwrap_or_else(|e| panic!("bad line {e:?}: {line}"));
        }
        assert!(lines[0].contains("\"flight\":\"dump\""));
        assert!(lines[0].contains("runtime/prim"), "meta names the trip site");
        assert!(lines[1].contains("fault/fired"));
        // Dumping again still works — the ring is a snapshot source.
        assert_eq!(rec.dump("again").events, 2);
    }

    #[cfg(feature = "trace")]
    #[test]
    fn thread_local_recorder_round_trip() {
        assert!(!is_recording());
        assert_eq!(dump("nothing"), None);
        ensure(4);
        assert!(is_recording());
        ensure(99); // must not clobber the active ring
        record(&event("a", ""));
        record(&event("b", ""));
        let d = dump("post-mortem").expect("recorder active");
        assert_eq!(d.events, 2);
        clear();
        assert_eq!(dump("empty").expect("still active").events, 0);
        let rec = disable().expect("recorder returned");
        assert_eq!(rec.capacity(), 4, "ensure() kept the original capacity");
        assert!(!is_recording());
    }
}
