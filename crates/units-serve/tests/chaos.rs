//! Chaos pass for the service: inject deterministic faults into one
//! tenant's requests and hold the service to its isolation contract —
//! every injected failure surfaces as a typed [`ServeError`] on the
//! faulted tenant alone, and the other tenants (and the engine
//! session) keep serving correct answers afterwards.
//!
//! Build-gated behind `--features faults` via `required-features`.

use units::trace::faults::{self, FaultKind, FaultPlane};
use units::{Level, Observation};
use units_serve::{ServeError, Service};

const SQUARE: &str = "(unit (import) (export) (init (lambda (n) (* n n))))";
const CUBE: &str = "(unit (import) (export) (init (lambda (n) (* n (* n n)))))";

/// One seeded schedule: tenant `victim` runs its requests under an
/// armed fault plane, tenant `bystander` runs clean before and after.
/// Returns how many faults actually fired.
fn chaos_round(service: &Service, seed: u64) -> u64 {
    let victim = service.tenant("victim");
    let bystander = service.tenant("bystander");

    // Clean baseline from the bystander.
    assert_eq!(bystander.invoke("f", Some(4)).unwrap().value, Observation::Int(64));

    let kind = if seed.is_multiple_of(2) { FaultKind::Error } else { FaultKind::Panic };
    faults::arm(FaultPlane::seeded(seed).rate_per_mille(200).budget(2).kind(kind));
    for arg in 0..6 {
        match victim.invoke("f", Some(arg)) {
            Ok(outcome) => assert_eq!(
                outcome.value,
                Observation::Int(arg * arg),
                "seed {seed}: a completed run must still be correct"
            ),
            // A fault anywhere in the pipeline must surface as a typed
            // service error — never an escaped panic (the harness would
            // abort the test) and never a wrong answer.
            Err(e) => assert!(
                matches!(e, ServeError::Engine(_)),
                "seed {seed}: fault surfaced as unexpected {e}"
            ),
        }
    }
    let plane = faults::disarm().expect("the service must leave the test's plane armed");
    let fired = plane.trips();

    // Isolation: the bystander is untouched by the victim's chaos, on
    // the same engine session, right after the storm.
    assert_eq!(bystander.invoke("f", Some(5)).unwrap().value, Observation::Int(125));
    assert_eq!(victim.invoke("f", Some(9)).unwrap().value, Observation::Int(81));
    fired
}

#[test]
fn faulted_tenants_fail_typed_while_bystanders_keep_serving() {
    let service = Service::builder().level(Level::Untyped).build();
    service.tenant("victim").load_plugin("f", SQUARE, None).unwrap();
    service.tenant("bystander").load_plugin("f", CUBE, None).unwrap();

    let mut total_fired = 0;
    for seed in 1..=40 {
        total_fired += chaos_round(&service, seed);
    }
    assert!(total_fired > 0, "the sweep must actually inject faults to prove anything");

    // The counters kept score: every victim failure was recorded,
    // nothing leaked into the bystander's books.
    let stats = service.stats();
    assert_eq!(stats["bystander"].failed, 0);
    assert_eq!(
        stats["victim"].ok + stats["victim"].failed,
        stats["victim"].requests,
        "every request is accounted ok or failed"
    );
}

#[test]
fn faults_during_publish_reject_the_plugin_but_spare_the_slot() {
    let service = Service::builder().level(Level::Untyped).build();
    let tenant = service.tenant("a");
    tenant.load_plugin("f", SQUARE, None).unwrap();

    // A fault on the dynamic-link site makes the swap fail…
    faults::arm(FaultPlane::seeded(7).trigger("compile/dynlink", 1));
    let sig = "(sig (import) (export))";
    let result = tenant.swap_plugin("f", CUBE, Some(sig));
    faults::disarm();
    assert!(result.is_err(), "the armed trigger must fire on the dynlink site");

    // …and the old version keeps serving, still on version 1.
    assert_eq!(tenant.plugin("f").unwrap().version(), 1);
    assert_eq!(tenant.invoke("f", Some(3)).unwrap().value, Observation::Int(9));

    // With the plane gone the same swap goes through.
    let info = tenant.swap_plugin("f", CUBE, Some(sig)).unwrap();
    assert_eq!(info.version, 2);
    assert_eq!(tenant.invoke("f", Some(3)).unwrap().value, Observation::Int(27));
}
