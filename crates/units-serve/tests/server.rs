//! End-to-end smoke test of the `unitsd` binary: spawn the daemon on
//! a fresh socket, drive the whole protocol from two concurrent
//! tenant connections, hot-swap a plug-in, and shut the server down.

use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use units_serve::proto::Request;
use units_serve::Client;
use units::Limits;

const SQUARE: &str = "(unit (import) (export) (init (lambda (n) (* n n))))";
const CUBE: &str = "(unit (import) (export) (init (lambda (n) (* n (* n n)))))";

/// A running daemon that is killed (and its socket removed) on drop,
/// so a failing assertion never leaks a process.
struct Daemon {
    child: Child,
    socket: PathBuf,
}

impl Daemon {
    fn start(tag: &str, extra_args: &[&str]) -> Daemon {
        let socket = std::env::temp_dir()
            .join(format!("unitsd-test-{}-{tag}.sock", std::process::id()));
        let _ = std::fs::remove_file(&socket);
        let child = Command::new(env!("CARGO_BIN_EXE_unitsd"))
            .arg("--socket")
            .arg(&socket)
            .args(extra_args)
            .stdout(Stdio::null())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("unitsd must start");
        // Readiness: the socket file appears once the daemon binds.
        let deadline = Instant::now() + Duration::from_secs(30);
        while !socket.exists() {
            assert!(Instant::now() < deadline, "unitsd never bound {}", socket.display());
            std::thread::sleep(Duration::from_millis(20));
        }
        Daemon { child, socket }
    }

    fn connect(&self) -> Client {
        // The socket file appears after bind(2) but fractionally before
        // listen(2); on a loaded host a connect in that window is
        // refused, so retry under a deadline.
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            match Client::connect(&self.socket) {
                Ok(client) => return client,
                Err(_) if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(20));
                }
                Err(e) => panic!("connect to unitsd: {e}"),
            }
        }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
        let _ = std::fs::remove_file(&self.socket);
    }
}

#[test]
fn the_daemon_serves_two_tenants_loads_swaps_and_shuts_down() {
    let mut daemon = Daemon::start("smoke", &["--level", "untyped", "--fuel", "1000000"]);

    // Two tenants on two concurrent connections.
    let mut alice = daemon.connect();
    let mut bob = daemon.connect();
    assert_eq!(alice.hello("alice").unwrap().get_str("tenant"), Some("alice"));
    assert_eq!(bob.hello("bob").unwrap().get_str("tenant"), Some("bob"));

    let load = |name: &str, source: &str| Request::Load {
        name: name.to_string(),
        source: source.to_string(),
        sig: None,
    };
    let reply = alice.call(&load("f", SQUARE)).unwrap();
    assert_eq!(reply.get_bool("ok"), Some(true), "{reply}");
    assert_eq!(reply.get_int("version"), Some(1));
    let reply = bob.call(&load("f", CUBE)).unwrap();
    assert_eq!(reply.get_bool("ok"), Some(true), "{reply}");

    // Concurrent invokes from both tenants: same plug-in name, private
    // namespaces, different answers.
    let handles: Vec<_> = [("alice", 36i64), ("bob", 216i64)]
        .into_iter()
        .map(|(tenant, expected)| {
            let mut client = daemon.connect();
            std::thread::spawn(move || {
                client.hello(tenant).unwrap();
                for _ in 0..5 {
                    let reply = client.invoke("f", 6).unwrap();
                    assert_eq!(reply.get_bool("ok"), Some(true), "{tenant}: {reply}");
                    assert_eq!(reply.get_str("value"), Some(expected.to_string().as_str()));
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().unwrap();
    }

    // Hot swap on alice's connection; bob's plug-in is untouched.
    let reply = alice
        .call(&Request::Swap { name: "f".to_string(), source: CUBE.to_string(), sig: None })
        .unwrap();
    assert_eq!(reply.get_bool("ok"), Some(true), "{reply}");
    assert_eq!(reply.get_int("version"), Some(2));
    assert_eq!(alice.invoke("f", 2).unwrap().get_str("value"), Some("8"));
    assert_eq!(bob.invoke("f", 2).unwrap().get_str("value"), Some("8"));

    // Typed protocol errors, not hangups.
    let reply = alice
        .call(&Request::Invoke { name: "ghost".to_string(), arg: None, limits: Limits::none() })
        .unwrap();
    assert_eq!(reply.get_bool("ok"), Some(false));
    assert_eq!(reply.get_str("kind"), Some("plugin-missing"));

    // Stats cover both tenants.
    let reply = alice.call(&Request::Stats).unwrap();
    let tenants = reply.get("tenants").expect("stats carries tenants");
    assert!(tenants.get("alice").is_some() && tenants.get("bob").is_some(), "{reply}");

    // Shutdown: acknowledged, then the process exits on its own.
    let reply = alice.call(&Request::Shutdown).unwrap();
    assert_eq!(reply.get_bool("ok"), Some(true));
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        match daemon.child.try_wait().unwrap() {
            Some(status) => {
                assert!(status.success(), "unitsd exited with {status}");
                break;
            }
            None => {
                assert!(Instant::now() < deadline, "unitsd never exited after shutdown");
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }
}

#[test]
fn per_tenant_caps_reach_the_wire_as_admission_denials() {
    let daemon = Daemon::start("caps", &["--level", "untyped", "--fuel", "1000"]);
    let mut client = daemon.connect();
    client.hello("tight").unwrap();
    client
        .call(&Request::Load {
            name: "f".to_string(),
            source: SQUARE.to_string(),
            sig: None,
        })
        .unwrap();

    // Over-asking the daemon-wide cap is refused with the structured
    // admission fields.
    let reply = client
        .call(&Request::Invoke {
            name: "f".to_string(),
            arg: Some(3),
            limits: Limits::none().fuel(1_000_000),
        })
        .unwrap();
    assert_eq!(reply.get_bool("ok"), Some(false), "{reply}");
    assert_eq!(reply.get_str("kind"), Some("admission-denied"));
    assert_eq!(reply.get_int("requested"), Some(1_000_000));
    assert_eq!(reply.get_int("cap"), Some(1_000));

    // Within the cap, the request is served.
    let reply = client.invoke("f", 3).unwrap();
    assert_eq!(reply.get_str("value"), Some("9"), "{reply}");
}

#[test]
fn idle_connections_are_closed_cleanly_and_counted() {
    let daemon = Daemon::start("idle", &["--level", "untyped", "--idle-timeout", "1"]);

    // This connection goes idle past the deadline: the server closes
    // it — our next call sees a clean hangup, not a protocol error.
    let mut idler = daemon.connect();
    idler.hello("idler").unwrap();
    std::thread::sleep(Duration::from_millis(1800));
    let err = idler.call(&Request::Stats).unwrap_err();
    assert!(
        matches!(
            err.kind(),
            std::io::ErrorKind::UnexpectedEof
                | std::io::ErrorKind::BrokenPipe
                | std::io::ErrorKind::ConnectionReset
        ),
        "expected a clean close, got {err}"
    );

    // A fresh, active connection still works, and stats count the kill.
    let mut live = daemon.connect();
    live.hello("live").unwrap();
    let reply = live.call(&Request::Stats).unwrap();
    assert_eq!(reply.get_bool("ok"), Some(true), "{reply}");
    assert_eq!(reply.get_int("idle_timeouts"), Some(1), "{reply}");
    // The stats response also carries the engine's metrics plane.
    let engine = reply.get("engine").expect("stats carries engine metrics");
    assert!(engine.get("cache").is_some() && engine.get("store").is_some(), "{reply}");
}

#[test]
fn warm_started_daemon_serves_runs_without_reparsing() {
    let cache_dir = std::env::temp_dir()
        .join(format!("unitsd-test-{}-cache", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);
    let dir_arg = cache_dir.to_str().unwrap().to_string();
    let run = |source: &str| Request::Run {
        source: source.to_string(),
        limits: Limits::none(),
    };
    let program = "(invoke (unit (import) (export) (init (* 21 2))))";

    // First daemon process: a cold run populates the store.
    {
        let mut daemon =
            Daemon::start("warm1", &["--level", "untyped", "--cache-dir", &dir_arg]);
        let mut client = daemon.connect();
        client.hello("t").unwrap();
        let reply = client.call(&run(program)).unwrap();
        assert_eq!(reply.get_str("value"), Some("42"), "{reply}");
        client.call(&Request::Shutdown).unwrap();
        let _ = daemon.child.wait();
    }

    // Second daemon process over the same directory: the same run is
    // answered from disk — the engine reports zero parses.
    let mut daemon = Daemon::start("warm2", &["--level", "untyped", "--cache-dir", &dir_arg]);
    let mut client = daemon.connect();
    client.hello("t").unwrap();
    let reply = client.call(&run(program)).unwrap();
    assert_eq!(reply.get_str("value"), Some("42"), "{reply}");
    let stats = client.call(&Request::Stats).unwrap();
    let engine = stats.get("engine").expect("stats carries engine metrics");
    let cache = engine.get("cache").expect("engine metrics carry cache");
    assert_eq!(cache.get_int("parses"), Some(0), "warm daemon re-parsed: {stats}");
    let store = engine.get("store").expect("engine metrics carry store");
    assert_eq!(store.get_int("hits"), Some(1), "{stats}");
    client.call(&Request::Shutdown).unwrap();
    let _ = daemon.child.wait();
    let _ = std::fs::remove_dir_all(&cache_dir);
}

#[test]
fn tenant_operations_before_hello_are_refused() {
    let daemon = Daemon::start("nohello", &["--level", "untyped"]);
    let mut client = daemon.connect();
    let reply = client.invoke("f", 1).unwrap();
    assert_eq!(reply.get_bool("ok"), Some(false));
    assert_eq!(reply.get_str("kind"), Some("no-tenant"));
}
