//! Integration tests for the in-process [`Service`]: the tenant
//! isolation, hot-swap, and admission-control contracts the server
//! relies on, exercised without any socket.

use std::sync::Arc;

use units::{Level, Limits, Observation, Resource};
use units_serve::{ServeError, Service};

const SQUARE: &str = "(unit (import) (export) (init (lambda (n) (* n n))))";
const CUBE: &str = "(unit (import) (export) (init (lambda (n) (* n (* n n)))))";

fn untyped() -> Service {
    Service::builder().level(Level::Untyped).build()
}

#[test]
fn tenants_are_isolated_in_namespace_and_budget() {
    let service = untyped();
    let a = service.tenant_with_caps("a", Limits::none().fuel(5));
    let b = service.tenant_with_caps("b", Limits::none().fuel(1_000_000));
    a.load_plugin("sq", SQUARE, None).unwrap();
    b.load_plugin("sq", SQUARE, None).unwrap();

    // Tenant a's tiny cap exhausts; the failure is a's alone — b keeps
    // serving the same plug-in name, unbothered.
    let err = a.invoke("sq", Some(9)).unwrap_err();
    assert_eq!(err.kind(), "resource-exhausted", "{err}");
    assert_eq!(b.invoke("sq", Some(9)).unwrap().value, Observation::Int(81));

    // Counters are per tenant too.
    let stats = service.stats();
    assert_eq!((stats["a"].failed, stats["a"].ok), (1, 0));
    assert_eq!((stats["b"].failed, stats["b"].ok), (0, 1));

    // And a never gains access to a name it did not publish.
    let c = service.tenant("c");
    assert_eq!(c.invoke("sq", Some(2)).unwrap_err().kind(), "plugin-missing");
}

#[test]
fn admission_rejections_are_typed_and_precede_execution() {
    let service = untyped();
    let tenant = service.tenant_with_caps("capped", Limits::none().fuel(10_000).max_depth(100));
    tenant.load_plugin("sq", SQUARE, None).unwrap();

    let err = tenant.invoke_with("sq", Some(2), Limits::none().max_depth(5_000)).unwrap_err();
    let ServeError::AdmissionDenied { tenant: name, resource, requested, cap } = err else {
        panic!("expected AdmissionDenied");
    };
    assert_eq!(name, "capped");
    assert_eq!(resource, Resource::Depth);
    assert_eq!((requested, cap), (5_000, 100));

    // The refusal cost nothing: no ok, no failed, one rejected.
    let snap = tenant.stats();
    assert_eq!((snap.ok, snap.failed, snap.rejected), (0, 0, 1));
    assert_eq!(snap.total_micros, 0, "a rejected request never reaches the engine");
}

#[test]
fn hot_swap_pins_inflight_requests_and_evicts_the_old_artifact() {
    let service = untyped();
    let tenant = service.tenant("a");
    tenant.load_plugin("f", SQUARE, None).unwrap();

    // A request "in flight": it snapshotted the current version and
    // has not finished when the swap lands.
    let inflight = tenant.plugin("f").unwrap();
    assert_eq!(inflight.version(), 1);

    let info = tenant.swap_plugin("f", CUBE, None).unwrap();
    assert_eq!(info.version, 2);
    assert!(info.evicted, "the swapped-out artifact must leave the engine's caches");

    // The in-flight request completes on the pre-swap artifact …
    let old = tenant.invoke_version(&inflight, Some(4), Limits::none()).unwrap();
    assert_eq!(old.value, Observation::Int(16), "in-flight requests finish on the old version");
    // … while new requests see the new one.
    assert_eq!(tenant.invoke("f", Some(4)).unwrap().value, Observation::Int(64));
    assert_eq!(tenant.plugin("f").unwrap().version(), 2);
}

#[test]
fn swapped_out_versions_do_not_linger_in_the_term_cache() {
    let service = untyped();
    let tenant = service.tenant("a");
    tenant.load_plugin("f", SQUARE, None).unwrap();
    let old = tenant.plugin("f").unwrap();

    let info = tenant.swap_plugin("f", CUBE, None).unwrap();
    assert!(info.evicted);

    // The swap already purged the old artifact: a second eviction via
    // the pinned handle finds nothing, while the current version is
    // still cached.
    assert!(!service.engine().evict(old.loaded()), "old version already evicted by the swap");
    let current = tenant.plugin("f").unwrap();
    assert!(service.engine().evict(current.loaded()), "current version was cached");

    // The pinned version remains invocable after its eviction.
    assert_eq!(
        tenant.invoke_version(&old, Some(5), Limits::none()).unwrap().value,
        Observation::Int(25)
    );
}

#[test]
fn signature_checked_swaps_reject_interface_breaks() {
    let service = Service::new(); // typed: Level::Constructed
    let tenant = service.tenant("a");
    let sig = "(sig (import) (export) (init (-> int int)))";
    tenant
        .load_plugin(
            "f",
            "(unit (import) (export) (init (lambda ((n int)) (* n n))))",
            Some(sig),
        )
        .unwrap();

    // A replacement that breaks the published interface is refused and
    // the old version keeps serving.
    let broken = "(unit (import) (export) (init (lambda ((n int)) (= n 0))))";
    let err = tenant.swap_plugin("f", broken, Some(sig)).unwrap_err();
    assert_eq!(err.kind(), "rejected", "{err}");
    assert_eq!(tenant.plugin("f").unwrap().version(), 1);
    assert_eq!(tenant.invoke("f", Some(5)).unwrap().value, Observation::Int(25));
}

#[test]
fn four_tenants_run_concurrent_differential_invokes() {
    let service = untyped();
    let programs = [
        ("alpha", SQUARE, 6, 36),
        ("beta", CUBE, 3, 27),
        ("gamma", "(unit (import) (export) (init (lambda (n) (+ n 100))))", 11, 111),
        ("delta", "(unit (import) (export) (init (lambda (n) (- 0 n))))", 8, -8),
    ];
    for (tenant, source, _, _) in &programs {
        service.tenant(tenant).load_plugin("main", source, None).unwrap();
    }

    let service = Arc::new(service);
    let handles: Vec<_> = programs
        .into_iter()
        .map(|(name, _, arg, expected)| {
            let service = service.clone();
            std::thread::spawn(move || {
                let tenant = service.tenant(name);
                for round in 0..10 {
                    // Differential: all three backends must agree on
                    // every request, from every tenant, concurrently.
                    let outcome = tenant.invoke_differential("main", Some(arg + round)).unwrap();
                    let Observation::Int(got) = outcome.value else {
                        panic!("tenant {name} got a non-integer")
                    };
                    let want = match name {
                        "alpha" => (arg + round) * (arg + round),
                        "beta" => (arg + round) * (arg + round) * (arg + round),
                        "gamma" => arg + round + 100,
                        _ => -(arg + round),
                    };
                    assert_eq!(got, want, "tenant {name} round {round}");
                    let _ = expected;
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().unwrap();
    }

    let stats = service.stats();
    for tenant in ["alpha", "beta", "gamma", "delta"] {
        assert_eq!(stats[tenant].ok, 10, "tenant {tenant}");
        assert_eq!(stats[tenant].failed, 0, "tenant {tenant}");
    }
}

#[test]
fn plugin_invokes_report_printed_output() {
    let service = untyped();
    let tenant = service.tenant("a");
    let outcome = tenant
        .run("(invoke (unit (import) (export) (init (display \"hi\") 5)))", Limits::none())
        .unwrap();
    assert_eq!(outcome.value, Observation::Int(5));
    assert_eq!(outcome.output, vec!["hi".to_string()]);
}
