//! The socket front end: `unitsd`'s accept loop and per-connection
//! request handling.
//!
//! The server listens on a Unix-domain socket and spawns one thread
//! per connection. A connection speaks the [`crate::proto`] frame
//! protocol: it must `hello` first to bind itself to a tenant, then
//! issues loads, swaps, invokes, and runs against that tenant's slice
//! of the shared [`Service`]. All state lives in the service, so any
//! number of connections may serve one tenant concurrently, and two
//! tenants on two connections cannot observe each other beyond the
//! shared engine's caches.
//!
//! `shutdown` flips a flag and pokes the listener with a throwaway
//! connection so the blocking `accept` wakes up and the loop exits.

use std::io;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use units::{Limits, Outcome};

use crate::json::{self, Json};
use crate::proto::{error_response, ok_response, read_frame, write_frame, Request};
use crate::service::{Service, Tenant, TenantSnapshot};

/// A bound-but-not-yet-running server.
#[derive(Debug)]
pub struct Server {
    listener: UnixListener,
    path: PathBuf,
    service: Service,
    stopping: Arc<AtomicBool>,
    idle_timeout: Option<Duration>,
    idle_timeouts: Arc<AtomicU64>,
}

impl Server {
    /// Binds `path` (removing any stale socket file first).
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(path: impl AsRef<Path>, service: Service) -> io::Result<Server> {
        let path = path.as_ref().to_path_buf();
        // A previous unclean exit leaves the socket file behind; a
        // fresh bind on the same path must not fail for that.
        let _ = std::fs::remove_file(&path);
        let listener = UnixListener::bind(&path)?;
        Ok(Server {
            listener,
            path,
            service,
            stopping: Arc::new(AtomicBool::new(false)),
            idle_timeout: None,
            idle_timeouts: Arc::new(AtomicU64::new(0)),
        })
    }

    /// The socket path this server is bound to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Closes connections that sit idle (no complete request) for
    /// `timeout`. A timed-out connection is closed cleanly — no error,
    /// no half-written frame — and counted in the `stats` response's
    /// `idle_timeouts` field. `None` (the default) waits forever.
    pub fn idle_timeout(mut self, timeout: Option<Duration>) -> Server {
        self.idle_timeout = timeout.filter(|t| !t.is_zero());
        self
    }

    /// Accepts connections until a client sends `shutdown`. Each
    /// connection gets its own thread; the threads are detached — a
    /// connection mid-request when shutdown lands finishes that
    /// request, and the process exiting reaps the rest.
    ///
    /// # Errors
    ///
    /// Propagates accept failures other than the shutdown wake-up.
    pub fn run(self) -> io::Result<()> {
        for stream in self.listener.incoming() {
            if self.stopping.load(Ordering::SeqCst) {
                break;
            }
            let stream = stream?;
            let service = self.service.clone();
            let stopping = self.stopping.clone();
            let wake_path = self.path.clone();
            let idle_timeout = self.idle_timeout;
            let idle_timeouts = self.idle_timeouts.clone();
            std::thread::spawn(move || {
                let conn = Connection { idle_timeout, idle_timeouts };
                let _ = conn.serve(stream, &service, &stopping, &wake_path);
            });
        }
        let _ = std::fs::remove_file(&self.path);
        Ok(())
    }
}

/// Per-connection server state: the idle policy and the shared counter
/// it reports into.
struct Connection {
    idle_timeout: Option<Duration>,
    idle_timeouts: Arc<AtomicU64>,
}

impl Connection {
    /// Drives one connection to completion (EOF, idle timeout, I/O
    /// error, or shutdown).
    fn serve(
        &self,
        mut stream: UnixStream,
        service: &Service,
        stopping: &AtomicBool,
        wake_path: &Path,
    ) -> io::Result<()> {
        // A zero timeout is rejected by set_read_timeout, but the
        // builder already filtered it out.
        stream.set_read_timeout(self.idle_timeout)?;
        let mut tenant: Option<Tenant> = None;
        loop {
            let frame = match read_frame(&mut stream) {
                Ok(Some(frame)) => frame,
                Ok(None) => return Ok(()), // clean EOF
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    // The client sat idle past the deadline: count it and
                    // close cleanly, without an error frame the (absent)
                    // client would never read anyway.
                    self.idle_timeouts.fetch_add(1, Ordering::Relaxed);
                    units_trace::count("serve/idle_timeouts", 1);
                    return Ok(());
                }
                Err(e) => return Err(e),
            };
            let request = match Request::from_json(&frame) {
                Ok(request) => request,
                Err(message) => {
                    write_frame(&mut stream, &error_response("bad-request", &message))?;
                    continue;
                }
            };
            let response = match request {
                Request::Hello { tenant: name } => {
                    let bound = service.tenant(&name);
                    let reply = ok_response([("tenant", Json::str(bound.name()))]);
                    tenant = Some(bound);
                    reply
                }
                Request::Stats => {
                    stats_response(service, self.idle_timeouts.load(Ordering::Relaxed))
                }
                Request::Shutdown => {
                    write_frame(&mut stream, &ok_response([("stopping", Json::Bool(true))]))?;
                    stopping.store(true, Ordering::SeqCst);
                    // Wake the accept loop so it notices the flag.
                    let _ = UnixStream::connect(wake_path);
                    return Ok(());
                }
                tenant_op => match &tenant {
                    None => {
                        error_response("no-tenant", "send `hello` before tenant operations")
                    }
                    Some(tenant) => dispatch_tenant_op(tenant, tenant_op),
                },
            };
            write_frame(&mut stream, &response)?;
        }
    }
}

/// Executes one tenant-scoped request and renders the response.
fn dispatch_tenant_op(tenant: &Tenant, request: Request) -> Json {
    let published = |result: Result<crate::service::PublishInfo, crate::service::ServeError>| {
        match result {
            Ok(info) => ok_response([
                ("name", Json::str(info.name)),
                ("version", Json::Int(info.version as i64)),
                ("evicted", Json::Bool(info.evicted)),
            ]),
            Err(e) => serve_error_response(&e),
        }
    };
    match request {
        Request::Load { name, source, sig } => {
            published(tenant.load_plugin(&name, &source, sig.as_deref()))
        }
        Request::Swap { name, source, sig } => {
            published(tenant.swap_plugin(&name, &source, sig.as_deref()))
        }
        Request::Invoke { name, arg, limits } => {
            outcome_response(tenant.invoke_with(&name, arg, limits))
        }
        Request::Run { source, limits } => outcome_response(tenant.run(&source, limits)),
        // `hello`, `stats`, and `shutdown` are handled by the caller.
        Request::Hello { .. } | Request::Stats | Request::Shutdown => {
            error_response("bad-request", "not a tenant operation")
        }
    }
}

fn outcome_response(result: Result<Outcome, crate::service::ServeError>) -> Json {
    match result {
        Ok(outcome) => ok_response([
            ("value", Json::str(outcome.value.to_string())),
            ("output", Json::Arr(outcome.output.into_iter().map(Json::Str).collect())),
        ]),
        Err(e) => serve_error_response(&e),
    }
}

/// Renders a [`crate::service::ServeError`] with its typed `kind` and,
/// for admission refusals, the structured resource fields a client
/// needs to retry under the cap.
fn serve_error_response(e: &crate::service::ServeError) -> Json {
    let mut response = error_response(e.kind(), &e.to_string());
    if let crate::service::ServeError::AdmissionDenied { resource, requested, cap, .. } = e {
        if let Json::Obj(map) = &mut response {
            map.insert("resource".to_string(), Json::str(resource.to_string()));
            map.insert("requested".to_string(), Json::Int(*requested as i64));
            map.insert("cap".to_string(), Json::Int(*cap as i64));
        }
    }
    response
}

fn stats_response(service: &Service, idle_timeouts: u64) -> Json {
    let tenants: std::collections::BTreeMap<String, Json> = service
        .stats()
        .into_iter()
        .map(|(name, snap)| (name, snapshot_json(&snap)))
        .collect();
    // The engine renders its own snapshot (cache, store, recovery, runs)
    // as JSON; re-parse it into the response tree so `stats` carries one
    // coherent object. The snapshot JSON is validated by the engine's
    // own tests, so the fallback arm is for belt and braces.
    let engine = json::parse(&service.engine().metrics_snapshot().to_json())
        .unwrap_or(Json::Null);
    ok_response([
        ("tenants", Json::Obj(tenants)),
        ("engine", engine),
        ("idle_timeouts", Json::Int(idle_timeouts as i64)),
    ])
}

fn snapshot_json(snap: &TenantSnapshot) -> Json {
    Json::obj([
        ("requests", Json::Int(snap.requests as i64)),
        ("ok", Json::Int(snap.ok as i64)),
        ("failed", Json::Int(snap.failed as i64)),
        ("rejected", Json::Int(snap.rejected as i64)),
        ("total_micros", Json::Int(snap.total_micros as i64)),
    ])
}

/// A blocking client for the frame protocol — what the integration
/// tests, the CI smoke test, and embedders poking a live `unitsd` use.
#[derive(Debug)]
pub struct Client {
    stream: UnixStream,
}

impl Client {
    /// Connects to a server socket.
    ///
    /// # Errors
    ///
    /// Propagates the connect failure.
    pub fn connect(path: impl AsRef<Path>) -> io::Result<Client> {
        Ok(Client { stream: UnixStream::connect(path)? })
    }

    /// Sends one request and reads one response.
    ///
    /// # Errors
    ///
    /// I/O or framing errors; a server that hangs up mid-exchange
    /// surfaces as `UnexpectedEof`.
    pub fn call(&mut self, request: &Request) -> io::Result<Json> {
        write_frame(&mut self.stream, &request.to_json())?;
        read_frame(&mut self.stream)?
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "server hung up"))
    }

    /// `hello` — binds this connection to `tenant`.
    ///
    /// # Errors
    ///
    /// See [`Client::call`].
    pub fn hello(&mut self, tenant: &str) -> io::Result<Json> {
        self.call(&Request::Hello { tenant: tenant.to_string() })
    }

    /// `invoke` with an argument and no per-request budget.
    ///
    /// # Errors
    ///
    /// See [`Client::call`].
    pub fn invoke(&mut self, name: &str, arg: i64) -> io::Result<Json> {
        self.call(&Request::Invoke {
            name: name.to_string(),
            arg: Some(arg),
            limits: Limits::none(),
        })
    }
}
