//! `unitsd` — the Units link-and-invoke daemon.
//!
//! Binds a Unix-domain socket and serves the length-prefixed JSON
//! protocol in `units_serve::proto` until a client sends `shutdown`.
//!
//! ```text
//! unitsd --socket /tmp/unitsd.sock --level untyped --fuel 1000000
//! ```

use std::process::ExitCode;

use units::{Backend, Level, Limits};
use units_serve::{Server, Service};

const USAGE: &str = "\
unitsd — Units link-and-invoke daemon

USAGE:
    unitsd [OPTIONS]

OPTIONS:
    --socket PATH     socket to bind [default: /tmp/unitsd.sock]
    --level NAME      untyped | constructed | equations [default: constructed]
    --backend NAME    compiled | bytecode | reducer [default: compiled]
    --fuel N          default per-tenant fuel cap [default: none]
    --depth N         default per-tenant depth cap [default: none]
    --cells N         default per-tenant store-cell cap [default: none]
    --threads N       checking worker-pool size [default: auto]
    --cache-dir PATH  persistent artifact cache directory; a restarted
                      daemon over the same directory warm-starts without
                      re-parsing [default: in-memory only]
    --idle-timeout N  close connections idle for N seconds, counted in
                      stats [default: wait forever]
    --help            print this text
";

struct Config {
    socket: String,
    level: Level,
    backend: Backend,
    caps: Limits,
    threads: Option<usize>,
    cache_dir: Option<String>,
    idle_timeout: Option<std::time::Duration>,
}

fn parse_args(args: &[String]) -> Result<Option<Config>, String> {
    let mut config = Config {
        socket: "/tmp/unitsd.sock".to_string(),
        level: Level::Constructed,
        backend: Backend::Compiled,
        caps: Limits::none(),
        threads: None,
        cache_dir: None,
        idle_timeout: None,
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        if flag == "--help" || flag == "-h" {
            return Ok(None);
        }
        let value = it.next().ok_or_else(|| format!("{flag} needs a value"))?;
        match flag.as_str() {
            "--socket" => config.socket = value.clone(),
            "--level" => {
                config.level = match value.as_str() {
                    "untyped" => Level::Untyped,
                    "constructed" => Level::Constructed,
                    "equations" => Level::Equations,
                    other => return Err(format!("unknown level `{other}`")),
                }
            }
            "--backend" => {
                config.backend = match value.as_str() {
                    "compiled" => Backend::Compiled,
                    "bytecode" => Backend::Bytecode,
                    "reducer" => Backend::Reducer,
                    other => return Err(format!("unknown backend `{other}`")),
                }
            }
            "--fuel" | "--depth" | "--cells" => {
                let n: u64 =
                    value.parse().map_err(|_| format!("{flag} needs an integer, got {value}"))?;
                match flag.as_str() {
                    "--fuel" => config.caps.fuel = Some(n),
                    "--depth" => config.caps.max_depth = Some(n),
                    _ => config.caps.max_store_cells = Some(n),
                }
            }
            "--threads" => {
                config.threads =
                    Some(value.parse().map_err(|_| "--threads needs an integer".to_string())?);
            }
            "--cache-dir" => config.cache_dir = Some(value.clone()),
            "--idle-timeout" => {
                let secs: u64 = value
                    .parse()
                    .map_err(|_| "--idle-timeout needs a whole number of seconds".to_string())?;
                if secs == 0 {
                    return Err("--idle-timeout must be at least 1 second".to_string());
                }
                config.idle_timeout = Some(std::time::Duration::from_secs(secs));
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(Some(config))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let config = match parse_args(&args) {
        Ok(Some(config)) => config,
        Ok(None) => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(message) => {
            eprintln!("unitsd: {message}");
            eprint!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };

    let mut builder =
        Service::builder().level(config.level).backend(config.backend).caps(config.caps);
    if let Some(threads) = config.threads {
        builder = builder.threads(threads);
    }
    if let Some(dir) = &config.cache_dir {
        builder = builder.cache_dir(dir);
    }
    let service = builder.build();

    let server = match Server::bind(&config.socket, service) {
        Ok(server) => server.idle_timeout(config.idle_timeout),
        Err(e) => {
            eprintln!("unitsd: cannot bind {}: {e}", config.socket);
            return ExitCode::FAILURE;
        }
    };
    // The readiness line clients and smoke tests wait for.
    println!("unitsd: listening on {}", config.socket);
    use std::io::Write;
    let _ = std::io::stdout().flush();
    match server.run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("unitsd: server error: {e}");
            ExitCode::FAILURE
        }
    }
}
