//! A minimal JSON value — parser and printer — for the wire protocol.
//!
//! [`units_trace::json`] ships an escaper and a validator but no tree
//! parser, because the tracing layer only ever *writes* JSON. The
//! service has to *read* requests off a socket, so this module adds the
//! missing half: a recursive-descent parser into a small [`Json`]
//! enum, plus the inverse printer. String escaping is delegated to
//! `units_trace::json::{escape, unescape}` so both layers agree on the
//! grammar.

use std::collections::BTreeMap;
use std::fmt;

use units_trace::json::{escape, unescape};

/// A parsed JSON value.
///
/// Numbers are split into [`Json::Int`] and [`Json::Float`]: the
/// protocol itself only uses integers (versions, limits, arguments),
/// but stats payloads may carry derived averages.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer number.
    Int(i64),
    /// A non-integer number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. `BTreeMap` keeps rendering deterministic.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// The value at `key`, when this is an object that has one.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The string at `key`, when present.
    pub fn get_str(&self, key: &str) -> Option<&str> {
        match self.get(key)? {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer at `key`, when present.
    pub fn get_int(&self, key: &str) -> Option<i64> {
        match self.get(key)? {
            Json::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// The boolean at `key`, when present.
    pub fn get_bool(&self, key: &str) -> Option<bool> {
        match self.get(key)? {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Renders this value as compact JSON text.
    pub fn render(&self) -> String {
        self.to_string()
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Int(n) => write!(f, "{n}"),
            Json::Float(x) => {
                // `{}` on an integral f64 prints no decimal point, which
                // would reparse as Int; force one so round-trips hold.
                if x.fract() == 0.0 && x.is_finite() {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            Json::Str(s) => f.write_str(&escape(s)),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(map) => {
                f.write_str("{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{}:{v}", escape(k))?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Why a parse failed: byte offset and a short message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseJsonError {
    /// Byte offset of the failure in the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseJsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseJsonError {}

/// Parses exactly one JSON value; trailing non-whitespace is an error.
pub fn parse(src: &str) -> Result<Json, ParseJsonError> {
    let mut p = Parser { src: src.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.value(0)?;
    p.skip_ws();
    if p.pos != p.src.len() {
        return Err(p.err("trailing data after the value"));
    }
    Ok(value)
}

/// Nesting deeper than this is refused — the parser reads attacker-
/// controlled socket bytes and must not blow the stack.
const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    src: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseJsonError {
        ParseJsonError { offset: self.pos, message: message.to_string() }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.src.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn eat(&mut self, b: u8) -> bool {
        if self.src.get(self.pos) == Some(&b) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseJsonError> {
        if self.eat(b) {
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn keyword(&mut self, word: &str) -> bool {
        if self.src[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, ParseJsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("value nested too deeply"));
        }
        match self.src.get(self.pos) {
            Some(b'n') if self.keyword("null") => Ok(Json::Null),
            Some(b't') if self.keyword("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.keyword("false") => Ok(Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn string(&mut self) -> Result<String, ParseJsonError> {
        let start = self.pos;
        self.pos += 1; // the opening quote
        loop {
            match self.src.get(self.pos) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    break;
                }
                Some(b'\\') => {
                    self.pos += 2; // the escape introducer and its payload byte
                    if self.pos > self.src.len() {
                        return Err(self.err("unterminated escape"));
                    }
                }
                Some(_) => self.pos += 1,
            }
        }
        let literal = std::str::from_utf8(&self.src[start..self.pos])
            .map_err(|_| ParseJsonError { offset: start, message: "invalid UTF-8".to_string() })?;
        unescape(literal)
            .map_err(|e| ParseJsonError { offset: start + e.offset, message: e.message })
    }

    fn number(&mut self) -> Result<Json, ParseJsonError> {
        let start = self.pos;
        let _ = self.eat(b'-');
        while matches!(self.src.get(self.pos), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut float = false;
        if self.eat(b'.') {
            float = true;
            while matches!(self.src.get(self.pos), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.src.get(self.pos), Some(b'e') | Some(b'E')) {
            float = true;
            self.pos += 1;
            if !self.eat(b'+') {
                let _ = self.eat(b'-');
            }
            while matches!(self.src.get(self.pos), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).expect("digits are ASCII");
        if float {
            text.parse().map(Json::Float).map_err(|_| self.err("bad number"))
        } else {
            text.parse().map(Json::Int).map_err(|_| self.err("bad integer"))
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, ParseJsonError> {
        self.pos += 1; // `[`
        let mut items = Vec::new();
        self.skip_ws();
        if self.eat(b']') {
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            if self.eat(b']') {
                return Ok(Json::Arr(items));
            }
            self.expect(b',')?;
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, ParseJsonError> {
        self.pos += 1; // `{`
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.eat(b'}') {
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            if self.src.get(self.pos) != Some(&b'"') {
                return Err(self.err("expected a string key"));
            }
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            map.insert(key, value);
            self.skip_ws();
            if self.eat(b'}') {
                return Ok(Json::Obj(map));
            }
            self.expect(b',')?;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_the_protocol_shapes() {
        let cases = [
            r#"{"op":"hello","tenant":"a"}"#,
            r#"{"arg":7,"fuel":1000,"name":"sq","op":"invoke"}"#,
            r#"{"items":[1,-2,true,null,"x\n\"y\""],"nested":{"k":[{}]}}"#,
            "[1.5,2.0,-0.25]",
        ];
        for src in cases {
            let value = parse(src).unwrap();
            assert_eq!(value.render(), src, "canonical text must round-trip");
            assert_eq!(parse(&value.render()).unwrap(), value);
        }
    }

    #[test]
    fn accessors_pick_typed_fields() {
        let v = parse(r#"{"op":"invoke","arg":7,"deep":{"x":1},"on":true}"#).unwrap();
        assert_eq!(v.get_str("op"), Some("invoke"));
        assert_eq!(v.get_int("arg"), Some(7));
        assert_eq!(v.get_bool("on"), Some(true));
        assert_eq!(v.get_str("arg"), None, "wrong type reads as absent");
        assert_eq!(v.get("deep").and_then(|d| d.get_int("x")), Some(1));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "1 2", "\"unterminated", "{'a':1}"] {
            assert!(parse(bad).is_err(), "{bad:?} must not parse");
        }
        let deep = format!("{}1{}", "[".repeat(100), "]".repeat(100));
        assert!(parse(&deep).is_err(), "over-deep nesting is refused");
    }

    #[test]
    fn integral_floats_stay_floats_across_a_round_trip() {
        let v = Json::Float(2.0);
        assert_eq!(v.render(), "2.0");
        assert_eq!(parse(&v.render()).unwrap(), v);
    }
}
