//! A multi-tenant link-and-invoke service for Units.
//!
//! The paper's §3.4 pitch — signature-checked dynamic linking — is
//! what an extensible *server* needs: plug-ins arrive at run time,
//! are admitted only if they satisfy a published signature, and can
//! be replaced without restarting anything. This crate builds that
//! server in two layers:
//!
//! * [`Service`] — the in-process core. One shared [`units::Engine`]
//!   session, any number of named [`Tenant`]s, each with a private
//!   plug-in namespace, a resource cap enforced as admission control,
//!   and always-on request counters. Hot swap is an `Arc` replace:
//!   in-flight requests finish on the version they started with.
//!   Tests and benches call this directly.
//! * [`Server`] / [`Client`] and the `unitsd` binary — a socket front
//!   end speaking 4-byte-length-prefixed JSON frames over a
//!   Unix-domain socket, one thread per connection ([`proto`] has the
//!   vocabulary).
//!
//! # Example
//!
//! ```
//! use units_serve::Service;
//! use units::{Level, Limits, Observation};
//!
//! let service = Service::builder().level(Level::Untyped).build();
//! let tenant = service.tenant_with_caps("acme", Limits::none().fuel(100_000));
//! tenant
//!     .load_plugin("square", "(unit (import) (export) (init (lambda (n) (* n n))))", None)
//!     .unwrap();
//! let outcome = tenant.invoke("square", Some(12)).unwrap();
//! assert_eq!(outcome.value, Observation::Int(144));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod proto;
mod server;
mod service;

pub use server::{Client, Server};
pub use service::{
    PluginVersion, PublishInfo, ServeError, Service, ServiceBuilder, Tenant, TenantSnapshot,
};
