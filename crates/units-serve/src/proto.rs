//! The wire protocol: length-prefixed JSON frames and the request /
//! response vocabulary.
//!
//! Every message is one frame: a 4-byte big-endian length followed by
//! that many bytes of UTF-8 JSON. Requests are objects tagged with an
//! `"op"` field; responses carry `"ok": true` plus op-specific fields,
//! or `"ok": false` with a machine-readable `"kind"` (the
//! [`crate::ServeError::kind`] vocabulary, plus the transport's own
//! `"bad-request"` and `"no-tenant"`) and a human `"message"`.
//!
//! | op         | request fields                              | ok-response fields        |
//! |------------|---------------------------------------------|---------------------------|
//! | `hello`    | `tenant`                                    | `tenant`                  |
//! | `load`     | `name`, `source`, `sig?`                    | `name`, `version`         |
//! | `swap`     | `name`, `source`, `sig?`                    | `name`, `version`, `evicted` |
//! | `invoke`   | `name`, `arg?`, `fuel?`, `depth?`, `cells?` | `value`, `output`         |
//! | `run`      | `source`, `fuel?`, `depth?`, `cells?`       | `value`, `output`         |
//! | `stats`    | —                                           | `tenants`                 |
//! | `shutdown` | —                                           | `stopping`                |
//!
//! The optional `fuel` / `depth` / `cells` fields form the per-request
//! [`Limits`]; admission control compares them against the tenant's cap.

use std::io::{self, Read, Write};

use units::Limits;

use crate::json::Json;

/// The largest frame either side will accept. A frame claiming more
/// is a protocol error, not an allocation.
pub const MAX_FRAME: u32 = 16 * 1024 * 1024;

/// Writes `value` as one frame.
///
/// # Errors
///
/// Propagates I/O errors; refuses a body larger than [`MAX_FRAME`].
pub fn write_frame(w: &mut impl Write, value: &Json) -> io::Result<()> {
    let body = value.render();
    let len = u32::try_from(body.len()).unwrap_or(u32::MAX);
    if len > MAX_FRAME {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "frame too large"));
    }
    w.write_all(&len.to_be_bytes())?;
    w.write_all(body.as_bytes())?;
    w.flush()
}

/// Reads one frame. `Ok(None)` is a clean end of stream (EOF before
/// any length byte); everything else malformed is an error.
///
/// # Errors
///
/// I/O errors, oversized frames, invalid UTF-8, or invalid JSON.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Json>> {
    let mut len_bytes = [0u8; 4];
    match r.read_exact(&mut len_bytes) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_be_bytes(len_bytes);
    if len > MAX_FRAME {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "frame too large"));
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    let text = String::from_utf8(body)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "frame is not UTF-8"))?;
    crate::json::parse(&text)
        .map(Some)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

/// A decoded request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Bind this connection to a tenant.
    Hello {
        /// The tenant name.
        tenant: String,
    },
    /// Publish a new plug-in.
    Load {
        /// The plug-in name.
        name: String,
        /// The unit source.
        source: String,
        /// An optional signature to dynamically link against.
        sig: Option<String>,
    },
    /// Hot-swap an existing plug-in.
    Swap {
        /// The plug-in name.
        name: String,
        /// The replacement unit source.
        source: String,
        /// An optional signature to dynamically link against.
        sig: Option<String>,
    },
    /// Invoke a plug-in.
    Invoke {
        /// The plug-in name.
        name: String,
        /// An optional integer argument for the invoke result.
        arg: Option<i64>,
        /// The per-request budget (admission-checked).
        limits: Limits,
    },
    /// Run a raw program.
    Run {
        /// The program source.
        source: String,
        /// The per-request budget (admission-checked).
        limits: Limits,
    },
    /// Report every tenant's counters.
    Stats,
    /// Stop the server.
    Shutdown,
}

impl Request {
    /// Decodes a request frame.
    ///
    /// # Errors
    ///
    /// A human-readable description of what is missing or mistyped.
    pub fn from_json(value: &Json) -> Result<Request, String> {
        let op = value.get_str("op").ok_or_else(|| "missing string field `op`".to_string())?;
        let need = |field: &str| {
            value
                .get_str(field)
                .map(str::to_string)
                .ok_or_else(|| format!("op `{op}` needs string field `{field}`"))
        };
        let opt_sig = || value.get_str("sig").map(str::to_string);
        let limits = || {
            let mut limits = Limits::none();
            for (field, slot) in [
                ("fuel", &mut limits.fuel),
                ("depth", &mut limits.max_depth),
                ("cells", &mut limits.max_store_cells),
            ] {
                if let Some(n) = value.get_int(field) {
                    *slot = Some(u64::try_from(n).map_err(|_| {
                        format!("field `{field}` must be a non-negative integer")
                    })?);
                }
            }
            Ok::<Limits, String>(limits)
        };
        match op {
            "hello" => Ok(Request::Hello { tenant: need("tenant")? }),
            "load" => {
                Ok(Request::Load { name: need("name")?, source: need("source")?, sig: opt_sig() })
            }
            "swap" => {
                Ok(Request::Swap { name: need("name")?, source: need("source")?, sig: opt_sig() })
            }
            "invoke" => Ok(Request::Invoke {
                name: need("name")?,
                arg: value.get_int("arg"),
                limits: limits()?,
            }),
            "run" => Ok(Request::Run { source: need("source")?, limits: limits()? }),
            "stats" => Ok(Request::Stats),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(format!("unknown op `{other}`")),
        }
    }

    /// Encodes this request as a frame body — the client half.
    pub fn to_json(&self) -> Json {
        let limits_fields = |limits: &Limits, obj: &mut Vec<(&'static str, Json)>| {
            if let Some(fuel) = limits.fuel {
                obj.push(("fuel", Json::Int(fuel as i64)));
            }
            if let Some(depth) = limits.max_depth {
                obj.push(("depth", Json::Int(depth as i64)));
            }
            if let Some(cells) = limits.max_store_cells {
                obj.push(("cells", Json::Int(cells as i64)));
            }
        };
        match self {
            Request::Hello { tenant } => {
                Json::obj([("op", Json::str("hello")), ("tenant", Json::str(tenant.clone()))])
            }
            Request::Load { name, source, sig } | Request::Swap { name, source, sig } => {
                let op = if matches!(self, Request::Load { .. }) { "load" } else { "swap" };
                let mut fields = vec![
                    ("op", Json::str(op)),
                    ("name", Json::str(name.clone())),
                    ("source", Json::str(source.clone())),
                ];
                if let Some(sig) = sig {
                    fields.push(("sig", Json::str(sig.clone())));
                }
                Json::obj(fields)
            }
            Request::Invoke { name, arg, limits } => {
                let mut fields =
                    vec![("op", Json::str("invoke")), ("name", Json::str(name.clone()))];
                if let Some(arg) = arg {
                    fields.push(("arg", Json::Int(*arg)));
                }
                limits_fields(limits, &mut fields);
                Json::obj(fields)
            }
            Request::Run { source, limits } => {
                let mut fields =
                    vec![("op", Json::str("run")), ("source", Json::str(source.clone()))];
                limits_fields(limits, &mut fields);
                Json::obj(fields)
            }
            Request::Stats => Json::obj([("op", Json::str("stats"))]),
            Request::Shutdown => Json::obj([("op", Json::str("shutdown"))]),
        }
    }
}

/// Builds an `"ok": true` response with `fields` merged in.
pub fn ok_response(fields: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
    let mut all = vec![("ok", Json::Bool(true))];
    all.extend(fields);
    Json::obj(all)
}

/// Builds an `"ok": false` response carrying `kind` and `message`.
pub fn error_response(kind: &str, message: &str) -> Json {
    Json::obj([
        ("ok", Json::Bool(false)),
        ("kind", Json::str(kind)),
        ("message", Json::str(message)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_over_a_buffer() {
        let value = Request::Invoke {
            name: "sq".to_string(),
            arg: Some(9),
            limits: Limits::none().fuel(1000),
        }
        .to_json();
        let mut buffer = Vec::new();
        write_frame(&mut buffer, &value).unwrap();
        write_frame(&mut buffer, &Json::Null).unwrap();
        let mut reader = buffer.as_slice();
        assert_eq!(read_frame(&mut reader).unwrap(), Some(value));
        assert_eq!(read_frame(&mut reader).unwrap(), Some(Json::Null));
        assert_eq!(read_frame(&mut reader).unwrap(), None, "clean EOF reads as None");
    }

    #[test]
    fn requests_survive_an_encode_decode_round_trip() {
        let cases = [
            Request::Hello { tenant: "a".to_string() },
            Request::Load { name: "p".to_string(), source: "(unit …)".to_string(), sig: None },
            Request::Swap {
                name: "p".to_string(),
                source: "(unit …)".to_string(),
                sig: Some("(sig …)".to_string()),
            },
            Request::Invoke {
                name: "p".to_string(),
                arg: None,
                limits: Limits::none().max_depth(64).max_store_cells(10),
            },
            Request::Run { source: "(invoke …)".to_string(), limits: Limits::none() },
            Request::Stats,
            Request::Shutdown,
        ];
        for request in cases {
            let decoded = Request::from_json(&request.to_json()).unwrap();
            assert_eq!(decoded, request);
        }
    }

    #[test]
    fn malformed_requests_are_described_not_crashed() {
        let bad = [
            (r#"{"tenant":"a"}"#, "op"),
            (r#"{"op":"teleport"}"#, "unknown op"),
            (r#"{"op":"load","name":"p"}"#, "source"),
            (r#"{"op":"invoke","name":"p","fuel":-1}"#, "non-negative"),
        ];
        for (src, needle) in bad {
            let value = crate::json::parse(src).unwrap();
            let err = Request::from_json(&value).unwrap_err();
            assert!(err.contains(needle), "{err:?} should mention {needle:?}");
        }
    }

    #[test]
    fn oversized_frames_are_refused_without_allocating() {
        let mut buffer = Vec::new();
        buffer.extend_from_slice(&(MAX_FRAME + 1).to_be_bytes());
        let err = read_frame(&mut buffer.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
