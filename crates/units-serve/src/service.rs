//! The in-process link-and-invoke service: tenants, plug-ins,
//! admission control, and hot swap.
//!
//! A [`Service`] wraps one shared [`Engine`] session and multiplexes
//! any number of named tenants over it. Each [`Tenant`] owns
//!
//! * a private plug-in namespace — units published by one tenant are
//!   invisible to every other,
//! * a resource cap ([`Limits`]) enforced as *admission control*: a
//!   request asking for more than the cap is refused with a typed
//!   [`ServeError::AdmissionDenied`] before any evaluation starts, and
//!   a request asking for nothing still runs under the cap,
//! * always-on request counters (plus per-tenant labeled counters on
//!   the tracing plane in `trace` builds).
//!
//! Plug-ins follow the paper's §3.4 dynamic-linking story: a publish
//! with a signature goes through [`Archive::load`], so the unit is
//! parsed, checked, and signature-matched exactly as a dynamically
//! linked unit would be; a publish without one still requires a
//! closed, checkable unit. [`Tenant::swap_plugin`] replaces the
//! current version atomically behind an `Arc` — in-flight requests
//! holding a [`PluginVersion`] finish on the artifact they started
//! with, and the swapped-out artifact is evicted from the engine's
//! caches.
//!
//! The socket server in [`crate::server`] is a thin wire adapter over
//! this module; tests and benches call it directly and skip the kernel.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use units::{
    parse_expr, parse_signature, Archive, Backend, CheckOptions, DynlinkError, Engine, Expr,
    FallbackPolicy, Level, Limits, Loaded, Outcome, Resource, Strictness,
};

/// Why the service refused or failed a request.
#[derive(Debug)]
pub enum ServeError {
    /// The request asked for more of a resource than the tenant's cap
    /// allows. Refused at admission — nothing was evaluated.
    AdmissionDenied {
        /// The tenant whose cap applied.
        tenant: String,
        /// The resource that was over-asked.
        resource: Resource,
        /// What the request asked for.
        requested: u64,
        /// The tenant's cap.
        cap: u64,
    },
    /// `load` on a name that already has a plug-in; use `swap`.
    PluginExists {
        /// The occupied name.
        name: String,
    },
    /// `swap` or `invoke` on a name with no plug-in behind it.
    PluginMissing {
        /// The unknown name.
        name: String,
    },
    /// The published source is not an acceptable plug-in: it does not
    /// parse, does not check, is not a unit, or does not satisfy the
    /// signature it was published under.
    Rejected {
        /// The plug-in name the publish targeted.
        name: String,
        /// The checker's explanation.
        reason: String,
    },
    /// The engine failed the request after admission (runtime error,
    /// resource exhaustion under an *admitted* budget, …).
    Engine(units::Error),
}

impl ServeError {
    /// A stable machine-readable tag for the wire protocol.
    pub fn kind(&self) -> &'static str {
        match self {
            ServeError::AdmissionDenied { .. } => "admission-denied",
            ServeError::PluginExists { .. } => "plugin-exists",
            ServeError::PluginMissing { .. } => "plugin-missing",
            ServeError::Rejected { .. } => "rejected",
            ServeError::Engine(units::Error::ResourceExhausted { .. }) => "resource-exhausted",
            ServeError::Engine(_) => "engine",
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::AdmissionDenied { tenant, resource, requested, cap } => write!(
                f,
                "admission denied for tenant `{tenant}`: requested {resource} {requested} \
                 exceeds cap {cap}"
            ),
            ServeError::PluginExists { name } => {
                write!(f, "plug-in `{name}` already loaded; use swap to replace it")
            }
            ServeError::PluginMissing { name } => write!(f, "no plug-in named `{name}`"),
            ServeError::Rejected { name, reason } => {
                write!(f, "plug-in `{name}` rejected: {reason}")
            }
            ServeError::Engine(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Engine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<units::Error> for ServeError {
    fn from(e: units::Error) -> ServeError {
        ServeError::Engine(e)
    }
}

/// Configures a [`Service`] before it starts.
#[derive(Debug, Default)]
pub struct ServiceBuilder {
    level: Level,
    backend: Backend,
    caps: Limits,
    threads: Option<usize>,
    cache_dir: Option<std::path::PathBuf>,
}

impl ServiceBuilder {
    /// Sets the calculus level plug-ins are checked at.
    pub fn level(mut self, level: Level) -> ServiceBuilder {
        self.level = level;
        self
    }

    /// Sets the default execution backend.
    pub fn backend(mut self, backend: Backend) -> ServiceBuilder {
        self.backend = backend;
        self
    }

    /// Sets the default per-tenant resource cap. Tenants created
    /// without an explicit cap inherit this one; `Limits::none()`
    /// (the default) means uncapped.
    pub fn caps(mut self, caps: Limits) -> ServiceBuilder {
        self.caps = caps;
        self
    }

    /// Sets the engine's checking worker-pool size.
    pub fn threads(mut self, threads: usize) -> ServiceBuilder {
        self.threads = Some(threads);
        self
    }

    /// Points the engine at a persistent on-disk artifact cache
    /// (`units::EngineBuilder::cache_dir`): a restarted daemon over the
    /// same directory warm-starts without re-parsing. Store failures
    /// degrade to in-memory-only operation, never to request errors.
    pub fn cache_dir(mut self, dir: impl Into<std::path::PathBuf>) -> ServiceBuilder {
        self.cache_dir = Some(dir.into());
        self
    }

    /// Builds the service and its engine session.
    ///
    /// The engine runs with [`FallbackPolicy::none`]: the default
    /// policy escalates fuel after exhaustion, which would quietly run
    /// a capped tenant past the budget admission control just granted.
    /// In a multi-tenant server the caps are authoritative.
    pub fn build(self) -> Service {
        let mut engine = Engine::builder()
            .level(self.level)
            .backend(self.backend)
            .on_failure(FallbackPolicy::none());
        if let Some(threads) = self.threads {
            engine = engine.threads(threads);
        }
        if let Some(dir) = self.cache_dir {
            engine = engine.cache_dir(dir);
        }
        Service {
            inner: Arc::new(ServiceInner {
                engine: engine.build(),
                default_caps: self.caps,
                tenants: Mutex::new(BTreeMap::new()),
            }),
        }
    }
}

/// The multi-tenant link-and-invoke service. Cheap to clone; clones
/// share the engine session and the tenant table.
#[derive(Debug, Clone)]
pub struct Service {
    inner: Arc<ServiceInner>,
}

#[derive(Debug)]
struct ServiceInner {
    engine: Engine,
    default_caps: Limits,
    tenants: Mutex<BTreeMap<String, Arc<TenantState>>>,
}

#[derive(Debug)]
struct TenantState {
    name: String,
    caps: Limits,
    plugins: Mutex<BTreeMap<String, Arc<PluginSlot>>>,
    stats: TenantCounters,
}

/// Which bucket a finished (or refused) request falls into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RequestOutcome {
    Ok,
    Failed,
    Rejected,
}

#[derive(Debug, Default)]
struct TenantCounters {
    requests: AtomicU64,
    ok: AtomicU64,
    failed: AtomicU64,
    rejected: AtomicU64,
    total_micros: AtomicU64,
}

/// One plug-in name: the slot the current version sits in.
#[derive(Debug)]
struct PluginSlot {
    current: Mutex<Arc<PluginVersion>>,
}

/// One immutable published version of a plug-in.
///
/// An invoke snapshots the slot's `Arc<PluginVersion>` and runs on it;
/// a concurrent [`Tenant::swap_plugin`] replaces the slot but cannot
/// touch versions already snapshotted, so in-flight requests complete
/// on the artifact they started with.
#[derive(Debug)]
pub struct PluginVersion {
    name: String,
    version: u64,
    unit: Expr,
    loaded: Loaded,
}

impl PluginVersion {
    /// The plug-in name this version was published under.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The monotonically increasing publish counter, starting at 1.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The owned engine handle behind this version — the artifact an
    /// argument-less invoke runs. It stays runnable after a swap
    /// evicts it from the engine's caches.
    pub fn loaded(&self) -> &Loaded {
        &self.loaded
    }
}

/// What a successful publish reports back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PublishInfo {
    /// The plug-in name.
    pub name: String,
    /// The version now current.
    pub version: u64,
    /// For swaps: whether the replaced version's artifact was still in
    /// the engine's caches and got evicted. Always `false` for loads.
    pub evicted: bool,
}

/// A point-in-time view of one tenant's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TenantSnapshot {
    /// Requests that reached the tenant (admitted or not).
    pub requests: u64,
    /// Requests that completed with a value.
    pub ok: u64,
    /// Admitted requests that failed in the engine.
    pub failed: u64,
    /// Requests refused at admission.
    pub rejected: u64,
    /// Wall-clock microseconds spent in admitted requests.
    pub total_micros: u64,
}

impl Service {
    /// Starts configuring a service.
    pub fn builder() -> ServiceBuilder {
        ServiceBuilder::default()
    }

    /// A service with all defaults (constructed types, compiled
    /// backend, no caps).
    pub fn new() -> Service {
        Service::builder().build()
    }

    /// The shared engine session behind the service.
    pub fn engine(&self) -> &Engine {
        &self.inner.engine
    }

    /// The tenant named `name`, created with the default cap on first
    /// use. Handles are cheap to clone and [`Send`]; concurrent
    /// requests through clones of one tenant are fine.
    pub fn tenant(&self, name: &str) -> Tenant {
        self.tenant_with_caps(name, self.inner.default_caps)
    }

    /// Like [`Service::tenant`], but a *newly created* tenant gets
    /// `caps` instead of the default. An existing tenant keeps the cap
    /// it was created with — a reconnecting tenant cannot raise its
    /// own budget by asking again.
    pub fn tenant_with_caps(&self, name: &str, caps: Limits) -> Tenant {
        let mut tenants = self.inner.tenants.lock().expect("tenant table poisoned");
        let state = tenants
            .entry(name.to_string())
            .or_insert_with(|| {
                Arc::new(TenantState {
                    name: name.to_string(),
                    caps,
                    plugins: Mutex::new(BTreeMap::new()),
                    stats: TenantCounters::default(),
                })
            })
            .clone();
        Tenant { service: self.inner.clone(), state }
    }

    /// Counters for every tenant the service has seen.
    pub fn stats(&self) -> BTreeMap<String, TenantSnapshot> {
        let tenants = self.inner.tenants.lock().expect("tenant table poisoned");
        tenants.iter().map(|(name, state)| (name.clone(), state.snapshot())).collect()
    }
}

impl Default for Service {
    fn default() -> Service {
        Service::new()
    }
}

impl TenantState {
    fn snapshot(&self) -> TenantSnapshot {
        TenantSnapshot {
            requests: self.stats.requests.load(Ordering::Relaxed),
            ok: self.stats.ok.load(Ordering::Relaxed),
            failed: self.stats.failed.load(Ordering::Relaxed),
            rejected: self.stats.rejected.load(Ordering::Relaxed),
            total_micros: self.stats.total_micros.load(Ordering::Relaxed),
        }
    }
}

/// One tenant's view of the service.
#[derive(Debug, Clone)]
pub struct Tenant {
    service: Arc<ServiceInner>,
    state: Arc<TenantState>,
}

impl Tenant {
    /// The tenant's name.
    pub fn name(&self) -> &str {
        &self.state.name
    }

    /// The cap this tenant was created with.
    pub fn caps(&self) -> Limits {
        self.state.caps
    }

    /// This tenant's counters.
    pub fn stats(&self) -> TenantSnapshot {
        self.state.snapshot()
    }

    /// Publishes a new plug-in under `name`.
    ///
    /// With a signature, the publish is a §3.4 dynamic link: the
    /// source goes through [`Archive::load`] against the parsed
    /// signature. Without one, the source must still parse and check
    /// as a closed unit. Either way the unit is compiled up front, so
    /// a bad plug-in is refused at publish time, not at first invoke.
    ///
    /// # Errors
    ///
    /// [`ServeError::PluginExists`] when the name is taken,
    /// [`ServeError::Rejected`] when the source is not an acceptable
    /// plug-in.
    pub fn load_plugin(
        &self,
        name: &str,
        source: &str,
        signature: Option<&str>,
    ) -> Result<PublishInfo, ServeError> {
        {
            let plugins = self.state.plugins.lock().expect("plug-in table poisoned");
            if plugins.contains_key(name) {
                return Err(ServeError::PluginExists { name: name.to_string() });
            }
        }
        let version = self.publish(name, source, signature, 1)?;
        let mut plugins = self.state.plugins.lock().expect("plug-in table poisoned");
        if plugins.contains_key(name) {
            return Err(ServeError::PluginExists { name: name.to_string() });
        }
        plugins
            .insert(name.to_string(), Arc::new(PluginSlot { current: Mutex::new(version) }));
        Ok(PublishInfo { name: name.to_string(), version: 1, evicted: false })
    }

    /// Hot-swaps the plug-in `name` to a new version.
    ///
    /// The new source is checked and compiled *before* the slot is
    /// touched; a rejected swap leaves the old version serving. The
    /// replacement itself is one `Arc` store: requests that already
    /// snapshotted the old version finish on it, requests arriving
    /// after the swap see the new one. The old version's artifact is
    /// evicted from the engine's caches.
    ///
    /// # Errors
    ///
    /// [`ServeError::PluginMissing`] when nothing is loaded under
    /// `name`, [`ServeError::Rejected`] for an unacceptable source.
    pub fn swap_plugin(
        &self,
        name: &str,
        source: &str,
        signature: Option<&str>,
    ) -> Result<PublishInfo, ServeError> {
        let slot = self.slot(name)?;
        // Serialize concurrent swaps of one slot: hold the slot lock
        // across the version read *and* the store.
        let mut current = slot.current.lock().expect("plug-in slot poisoned");
        let next_version = current.version + 1;
        let version = self.publish(name, source, signature, next_version)?;
        let old = std::mem::replace(&mut *current, version);
        drop(current);
        let evicted = self.service.engine.evict(&old.loaded);
        Ok(PublishInfo { name: name.to_string(), version: next_version, evicted })
    }

    /// The currently served version of plug-in `name` — the same
    /// snapshot an in-flight invoke holds. Use it to pin a version
    /// across a swap.
    pub fn plugin(&self, name: &str) -> Option<Arc<PluginVersion>> {
        let slot = {
            let plugins = self.state.plugins.lock().expect("plug-in table poisoned");
            plugins.get(name)?.clone()
        };
        let version = slot.current.lock().expect("plug-in slot poisoned").clone();
        Some(version)
    }

    /// The names of this tenant's plug-ins, sorted.
    pub fn plugin_names(&self) -> Vec<String> {
        let plugins = self.state.plugins.lock().expect("plug-in table poisoned");
        plugins.keys().cloned().collect()
    }

    /// Invokes plug-in `name`: snapshots the current version and runs
    /// it, applying the invoke result to `arg` when one is given.
    ///
    /// # Errors
    ///
    /// [`ServeError::PluginMissing`], [`ServeError::AdmissionDenied`],
    /// or [`ServeError::Engine`] for failures after admission.
    pub fn invoke(&self, name: &str, arg: Option<i64>) -> Result<Outcome, ServeError> {
        self.invoke_with(name, arg, Limits::none())
    }

    /// Like [`Tenant::invoke`], with a per-request budget. Each field
    /// of `requested` that is set must fit under the tenant's cap
    /// (else [`ServeError::AdmissionDenied`]); fields left `None`
    /// fall back to the cap itself.
    pub fn invoke_with(
        &self,
        name: &str,
        arg: Option<i64>,
        requested: Limits,
    ) -> Result<Outcome, ServeError> {
        let version = self.plugin(name).ok_or_else(|| {
            self.count_request(RequestOutcome::Failed);
            ServeError::PluginMissing { name: name.to_string() }
        })?;
        self.invoke_version(&version, arg, requested)
    }

    /// Invokes a pinned [`PluginVersion`] — what the service itself
    /// does after snapshotting, exposed so a caller can prove swap
    /// semantics or finish a long request on the version it started
    /// with.
    pub fn invoke_version(
        &self,
        version: &PluginVersion,
        arg: Option<i64>,
        requested: Limits,
    ) -> Result<Outcome, ServeError> {
        self.admitted(requested, |tenant, limits| {
            let loaded = match arg {
                None => version.loaded.clone(),
                Some(n) => {
                    // A fresh term per argument; the engine's term cache
                    // makes repeats of one (plug-in, arg) pair warm.
                    let call = Expr::app(
                        Expr::invoke_program(version.unit.clone()),
                        vec![Expr::int(n)],
                    );
                    tenant.service.engine.load_expr(call)?
                }
            };
            loaded.run_with(tenant.service.engine.backend(), limits).map_err(ServeError::from)
        })
    }

    /// Runs a raw program (not a published plug-in) under this
    /// tenant's cap — the service equivalent of [`Engine::invoke`].
    ///
    /// # Errors
    ///
    /// [`ServeError::AdmissionDenied`] or [`ServeError::Engine`].
    pub fn run(&self, source: &str, requested: Limits) -> Result<Outcome, ServeError> {
        self.admitted(requested, |tenant, limits| {
            let loaded = tenant.service.engine.load(source)?;
            loaded.run_with(tenant.service.engine.backend(), limits).map_err(ServeError::from)
        })
    }

    /// Invokes plug-in `name` on every backend and checks they agree,
    /// returning the (shared) outcome. Panics on divergence, like
    /// [`Loaded::run_differential`].
    ///
    /// # Errors
    ///
    /// Same as [`Tenant::invoke_with`].
    pub fn invoke_differential(
        &self,
        name: &str,
        arg: Option<i64>,
    ) -> Result<Outcome, ServeError> {
        let version = self.plugin(name).ok_or_else(|| {
            self.count_request(RequestOutcome::Failed);
            ServeError::PluginMissing { name: name.to_string() }
        })?;
        self.admitted(Limits::none(), |tenant, _limits| {
            let loaded = match arg {
                None => version.loaded.clone(),
                Some(n) => {
                    let call = Expr::app(
                        Expr::invoke_program(version.unit.clone()),
                        vec![Expr::int(n)],
                    );
                    tenant.service.engine.load_expr(call)?
                }
            };
            loaded.run_differential().map_err(ServeError::from)
        })
    }

    /// Admission gate: folds `requested` into this tenant's cap or
    /// refuses, then runs `work` under the effective budget, counting
    /// the request either way.
    fn admitted(
        &self,
        requested: Limits,
        work: impl FnOnce(&Tenant, Limits) -> Result<Outcome, ServeError>,
    ) -> Result<Outcome, ServeError> {
        let limits = match self.admit(requested) {
            Ok(limits) => limits,
            Err(denied) => {
                self.count_request(RequestOutcome::Rejected);
                return Err(denied);
            }
        };
        let start = Instant::now();
        let result = work(self, limits);
        let micros = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
        self.state.stats.total_micros.fetch_add(micros, Ordering::Relaxed);
        self.count_request(if result.is_ok() {
            RequestOutcome::Ok
        } else {
            RequestOutcome::Failed
        });
        result
    }

    /// Checks `requested` against the cap; the effective budget is the
    /// admitted request where given, the cap where not.
    fn admit(&self, requested: Limits) -> Result<Limits, ServeError> {
        let caps = self.state.caps;
        let field = |resource: Resource, asked: Option<u64>, cap: Option<u64>| match asked {
            None => Ok(cap),
            Some(asked) => {
                if let Some(cap) = cap {
                    if asked > cap {
                        return Err(ServeError::AdmissionDenied {
                            tenant: self.state.name.clone(),
                            resource,
                            requested: asked,
                            cap,
                        });
                    }
                }
                Ok(Some(asked))
            }
        };
        Ok(Limits {
            fuel: field(Resource::Fuel, requested.fuel, caps.fuel)?,
            max_depth: field(Resource::Depth, requested.max_depth, caps.max_depth)?,
            max_store_cells: field(
                Resource::StoreCells,
                requested.max_store_cells,
                caps.max_store_cells,
            )?,
        })
    }

    /// Bumps the request counters: total always, plus the bucket the
    /// outcome lands in. In `trace` builds the same tallies feed the
    /// tracing plane as per-tenant labeled counters.
    fn count_request(&self, outcome: RequestOutcome) {
        self.state.stats.requests.fetch_add(1, Ordering::Relaxed);
        units_trace::count_labeled("serve/requests", &self.state.name, 1);
        let (bucket, label) = match outcome {
            RequestOutcome::Ok => (&self.state.stats.ok, "serve/ok"),
            RequestOutcome::Failed => (&self.state.stats.failed, "serve/failed"),
            RequestOutcome::Rejected => (&self.state.stats.rejected, "serve/rejected"),
        };
        bucket.fetch_add(1, Ordering::Relaxed);
        units_trace::count_labeled(label, &self.state.name, 1);
    }

    /// Parses, checks, and compiles a publish into a [`PluginVersion`].
    fn publish(
        &self,
        name: &str,
        source: &str,
        signature: Option<&str>,
        version: u64,
    ) -> Result<Arc<PluginVersion>, ServeError> {
        let rejected = |reason: String| ServeError::Rejected { name: name.to_string(), reason };
        let opts =
            CheckOptions { level: self.service.engine.level(), strictness: Strictness::Paper };
        let unit = match signature {
            Some(sig_src) => {
                // §3.4: publishing under a signature is a dynamic link.
                let sig = parse_signature(sig_src)
                    .map_err(|e| rejected(format!("bad signature: {e}")))?;
                let mut archive = Archive::new();
                archive.publish(name, source);
                archive.load(name, &sig, opts).map_err(|e| match e {
                    DynlinkError::NotAUnit
                    | DynlinkError::Signature { .. }
                    | DynlinkError::Parse(_)
                    | DynlinkError::Check(_) => rejected(e.to_string()),
                    other => ServeError::Engine(units::Error::Dynlink(other)),
                })?
            }
            None => {
                let expr = parse_expr(source).map_err(|e| rejected(format!("{e}")))?;
                if !matches!(expr, Expr::Unit(_)) {
                    return Err(rejected("published expression is not a unit".to_string()));
                }
                units::check_program(&expr, opts).map_err(|errs| {
                    let reasons: Vec<String> = errs.iter().map(|e| e.to_string()).collect();
                    rejected(reasons.join("; "))
                })?;
                expr
            }
        };
        // Compile the no-argument invocation now: a plug-in that cannot
        // even link is refused at publish, and argument-less invokes
        // run a prebuilt artifact.
        let loaded = self
            .service
            .engine
            .load_expr(Expr::invoke_program(unit.clone()))
            .map_err(|e| rejected(format!("unit does not link: {e}")))?;
        Ok(Arc::new(PluginVersion { name: name.to_string(), version, unit, loaded }))
    }

    fn slot(&self, name: &str) -> Result<Arc<PluginSlot>, ServeError> {
        let plugins = self.state.plugins.lock().expect("plug-in table poisoned");
        plugins
            .get(name)
            .cloned()
            .ok_or_else(|| ServeError::PluginMissing { name: name.to_string() })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use units::Observation;

    const SQUARE: &str = "(unit (import) (export) (init (lambda (n) (* n n))))";
    const CUBE: &str = "(unit (import) (export) (init (lambda (n) (* n (* n n)))))";

    fn untyped_service() -> Service {
        Service::builder().level(Level::Untyped).build()
    }

    #[test]
    fn a_plugin_loads_and_serves_invokes() {
        let service = untyped_service();
        let tenant = service.tenant("a");
        let info = tenant.load_plugin("sq", SQUARE, None).unwrap();
        assert_eq!(info.version, 1);
        let outcome = tenant.invoke("sq", Some(7)).unwrap();
        assert_eq!(outcome.value, Observation::Int(49));
        let snap = tenant.stats();
        assert_eq!((snap.requests, snap.ok), (1, 1));
    }

    #[test]
    fn loading_an_occupied_name_is_refused() {
        let service = untyped_service();
        let tenant = service.tenant("a");
        tenant.load_plugin("sq", SQUARE, None).unwrap();
        let err = tenant.load_plugin("sq", CUBE, None).unwrap_err();
        assert!(matches!(err, ServeError::PluginExists { .. }), "{err}");
        assert_eq!(err.kind(), "plugin-exists");
    }

    #[test]
    fn swap_replaces_atomically_and_pins_inflight_versions() {
        let service = untyped_service();
        let tenant = service.tenant("a");
        tenant.load_plugin("f", SQUARE, None).unwrap();
        let inflight = tenant.plugin("f").unwrap();

        let info = tenant.swap_plugin("f", CUBE, None).unwrap();
        assert_eq!(info.version, 2);
        assert!(info.evicted, "the swapped-out artifact leaves the caches");

        // New requests see the new version; the pinned snapshot still
        // runs the old artifact.
        assert_eq!(tenant.invoke("f", Some(3)).unwrap().value, Observation::Int(27));
        let old = tenant.invoke_version(&inflight, Some(3), Limits::none()).unwrap();
        assert_eq!(old.value, Observation::Int(9), "in-flight finishes on the pre-swap version");
    }

    #[test]
    fn swapping_an_absent_plugin_is_plugin_missing() {
        let service = untyped_service();
        let tenant = service.tenant("a");
        let err = tenant.swap_plugin("ghost", SQUARE, None).unwrap_err();
        assert_eq!(err.kind(), "plugin-missing");
    }

    #[test]
    fn a_rejected_swap_leaves_the_old_version_serving() {
        let service = untyped_service();
        let tenant = service.tenant("a");
        tenant.load_plugin("f", SQUARE, None).unwrap();
        let err = tenant.swap_plugin("f", "(+ 1 2)", None).unwrap_err();
        assert_eq!(err.kind(), "rejected", "{err}");
        assert_eq!(tenant.invoke("f", Some(4)).unwrap().value, Observation::Int(16));
        assert_eq!(tenant.plugin("f").unwrap().version(), 1);
    }

    #[test]
    fn signature_publishes_go_through_dynamic_linking() {
        let service = Service::new(); // Level::Constructed
        let tenant = service.tenant("a");
        let sig = "(sig (import) (export) (init (-> int int)))";
        let typed_square = "(unit (import) (export) (init (lambda ((n int)) (* n n))))";
        tenant.load_plugin("sq", typed_square, Some(sig)).unwrap();
        assert_eq!(tenant.invoke("sq", Some(6)).unwrap().value, Observation::Int(36));

        // A unit whose init is not int -> int fails the signature.
        let bool_unit = "(unit (import) (export) (init (lambda ((n int)) (= n 0))))";
        let err = tenant.load_plugin("nope", bool_unit, Some(sig)).unwrap_err();
        assert_eq!(err.kind(), "rejected", "{err}");
    }

    #[test]
    fn admission_control_refuses_over_cap_requests_before_running() {
        let service = untyped_service();
        let tenant = service.tenant_with_caps("capped", Limits::none().fuel(10_000));
        tenant.load_plugin("sq", SQUARE, None).unwrap();

        let err =
            tenant.invoke_with("sq", Some(5), Limits::none().fuel(1_000_000)).unwrap_err();
        let ServeError::AdmissionDenied { tenant: t, resource, requested, cap } = &err else {
            panic!("expected AdmissionDenied, got {err}");
        };
        assert_eq!((t.as_str(), *resource), ("capped", Resource::Fuel));
        assert_eq!((*requested, *cap), (1_000_000, 10_000));

        // Under-cap requests are admitted; cap applies when unasked.
        assert!(tenant.invoke_with("sq", Some(5), Limits::none().fuel(5_000)).is_ok());
        assert!(tenant.invoke("sq", Some(5)).is_ok());
        let snap = tenant.stats();
        assert_eq!((snap.requests, snap.ok, snap.rejected), (3, 2, 1));
    }

    #[test]
    fn the_cap_itself_bounds_unbudgeted_requests() {
        let service = untyped_service();
        let tenant = service.tenant_with_caps("tiny", Limits::none().fuel(5));
        tenant.load_plugin("sq", SQUARE, None).unwrap();
        let err = tenant.invoke("sq", Some(5)).unwrap_err();
        assert_eq!(err.kind(), "resource-exhausted", "{err}");
        let snap = tenant.stats();
        assert_eq!((snap.requests, snap.failed), (1, 1));
    }

    #[test]
    fn tenants_cannot_see_each_others_plugins() {
        let service = untyped_service();
        let a = service.tenant("a");
        let b = service.tenant("b");
        a.load_plugin("sq", SQUARE, None).unwrap();
        let err = b.invoke("sq", Some(2)).unwrap_err();
        assert_eq!(err.kind(), "plugin-missing");
        assert!(b.plugin_names().is_empty());
        assert_eq!(a.plugin_names(), vec!["sq".to_string()]);
    }

    #[test]
    fn a_reconnecting_tenant_keeps_its_original_cap() {
        let service = untyped_service();
        let first = service.tenant_with_caps("a", Limits::none().fuel(100));
        let again = service.tenant_with_caps("a", Limits::none().fuel(u64::MAX));
        assert_eq!(first.caps(), again.caps());
        assert_eq!(again.caps().fuel, Some(100));
    }

    #[test]
    fn raw_runs_are_capped_too() {
        let service = untyped_service();
        let tenant = service.tenant_with_caps("a", Limits::none().fuel(200_000));
        let outcome = tenant
            .run("(invoke (unit (import) (export) (init (+ 40 2))))", Limits::none())
            .unwrap();
        assert_eq!(outcome.value, Observation::Int(42));
        let err = tenant
            .run("(invoke (unit (import) (export) (init 0)))", Limits::none().fuel(300_000))
            .unwrap_err();
        assert_eq!(err.kind(), "admission-denied");
    }
}
