//! The store of the rewriting semantics.
//!
//! Following Felleisen–Hieb (the paper's cited technique for state), a
//! program state is a pair of an expression and a store. Locations hold
//! either a *definition cell* — created by the `letrec` reduction, filled
//! when the definition's expression reaches a value — or a hash table
//! (the substrate's only compound mutable data).

use std::collections::HashMap;

use units_kernel::{Expr, Loc};
use units_runtime::RuntimeError;

/// What a location holds.
#[derive(Debug, Clone)]
pub enum StoreEntry {
    /// A definition cell; `None` until initialized.
    Cell(Option<Expr>),
    /// A mutable string-keyed table of values.
    Hash(HashMap<String, Expr>),
}

/// The store σ.
#[derive(Debug, Default, Clone)]
pub struct Store {
    entries: Vec<StoreEntry>,
}

impl Store {
    /// An empty store.
    pub fn new() -> Store {
        Store::default()
    }

    /// Allocates an uninitialized definition cell.
    pub fn alloc_cell(&mut self) -> Loc {
        self.entries.push(StoreEntry::Cell(None));
        Loc(self.entries.len() - 1)
    }

    /// Allocates a fresh, empty hash table.
    pub fn alloc_hash(&mut self) -> Loc {
        self.entries.push(StoreEntry::Hash(HashMap::new()));
        Loc(self.entries.len() - 1)
    }

    /// Reads a definition cell.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::UndefinedRead`] if the cell is uninitialized.
    pub fn read_cell(&self, loc: Loc) -> Result<&Expr, RuntimeError> {
        match self.entries.get(loc.0) {
            Some(StoreEntry::Cell(Some(v))) => Ok(v),
            Some(StoreEntry::Cell(None)) => {
                Err(RuntimeError::UndefinedRead { name: format!("{loc}").into() })
            }
            _ => Err(RuntimeError::Unbound { name: format!("{loc}").into() }),
        }
    }

    /// Writes a definition cell.
    ///
    /// # Errors
    ///
    /// Returns an error if the location is not a cell.
    pub fn write_cell(&mut self, loc: Loc, value: Expr) -> Result<(), RuntimeError> {
        match self.entries.get_mut(loc.0) {
            Some(StoreEntry::Cell(slot)) => {
                *slot = Some(value);
                Ok(())
            }
            _ => Err(RuntimeError::Unbound { name: format!("{loc}").into() }),
        }
    }

    /// Accesses a hash table.
    ///
    /// # Errors
    ///
    /// Returns an error if the location is not a hash table.
    pub fn hash(&self, loc: Loc) -> Result<&HashMap<String, Expr>, RuntimeError> {
        match self.entries.get(loc.0) {
            Some(StoreEntry::Hash(h)) => Ok(h),
            _ => Err(RuntimeError::WrongType {
                expected: "a hash table",
                found: format!("{loc}"),
            }),
        }
    }

    /// Mutably accesses a hash table.
    ///
    /// # Errors
    ///
    /// Returns an error if the location is not a hash table.
    pub fn hash_mut(&mut self, loc: Loc) -> Result<&mut HashMap<String, Expr>, RuntimeError> {
        match self.entries.get_mut(loc.0) {
            Some(StoreEntry::Hash(h)) => Ok(h),
            _ => Err(RuntimeError::WrongType {
                expected: "a hash table",
                found: format!("{loc}"),
            }),
        }
    }

    /// Number of allocated locations.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has been allocated.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cells_error_until_written() {
        let mut s = Store::new();
        let l = s.alloc_cell();
        assert!(matches!(s.read_cell(l), Err(RuntimeError::UndefinedRead { .. })));
        s.write_cell(l, Expr::int(5)).unwrap();
        assert_eq!(s.read_cell(l).unwrap(), &Expr::int(5));
    }

    #[test]
    fn hash_entries_are_distinct_from_cells() {
        let mut s = Store::new();
        let h = s.alloc_hash();
        let c = s.alloc_cell();
        assert!(s.hash(h).is_ok());
        assert!(s.hash(c).is_err());
        assert!(s.read_cell(h).is_err());
        s.hash_mut(h).unwrap().insert("k".into(), Expr::int(1));
        assert_eq!(s.hash(h).unwrap().len(), 1);
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
    }
}
