//! The reference semantics: a substitution-based, small-step rewriting
//! machine for the unit calculi (paper Fig. 11, with a Felleisen–Hieb
//! store for mutable state).
//!
//! This crate is the executable counterpart of the paper's formal
//! semantics; the cells-based backend in `units-compile` is the
//! production implementation. The two are differentially tested against
//! each other in the workspace's integration suite.
//!
//! # Example
//!
//! ```
//! use units_reduce::Reducer;
//! use units_syntax::parse_expr;
//! use units_kernel::Expr;
//!
//! let program = parse_expr(
//!     "(invoke (unit (import) (export) (init (* 6 7))))").unwrap();
//! let mut reducer = Reducer::new();
//! let value = reducer.reduce_to_value(&program).unwrap();
//! assert_eq!(value, Expr::int(42));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod merge;
mod step;
mod store;

pub use merge::{constituent_units, merge_compound};
pub use step::{Reducer, Step};
pub use store::{Store, StoreEntry};

/// A short, human-readable description of an expression's shape, used in
/// dynamic-error messages.
pub(crate) fn render(expr: &units_kernel::Expr) -> String {
    use units_kernel::Expr;
    match expr {
        Expr::Lit(l) => l.to_string(),
        Expr::Lambda(lam) => format!("#⟨procedure/{}⟩", lam.params.len()),
        Expr::Prim(op, _) => format!("#⟨prim {op}⟩"),
        Expr::Unit(_) => "#⟨unit⟩".to_string(),
        Expr::Loc(l) => format!("#⟨{l}⟩"),
        Expr::Data(d) => format!("#⟨{:?} of {}⟩", d.role, d.ty_name),
        Expr::Variant(v) => format!("#⟨{} variant {}⟩", v.ty_name, v.tag),
        Expr::Tuple(items) => format!("#⟨tuple/{}⟩", items.len()),
        Expr::Var(x) | Expr::VarAt(x, _) => format!("variable `{x}`"),
        other => format!("a non-value ({})", kind_name(other)),
    }
}

fn kind_name(expr: &units_kernel::Expr) -> &'static str {
    use units_kernel::Expr;
    match expr {
        Expr::Var(_) | Expr::VarAt(..) => "variable",
        Expr::Lit(_) => "literal",
        Expr::Prim(..) => "primitive",
        Expr::Lambda(_) => "lambda",
        Expr::App(..) => "application",
        Expr::If(..) => "conditional",
        Expr::Seq(_) => "sequence",
        Expr::Let(..) => "let",
        Expr::Letrec(_) => "letrec",
        Expr::Set(..) => "assignment",
        Expr::Tuple(_) => "tuple",
        Expr::Proj(..) => "projection",
        Expr::Unit(_) => "unit",
        Expr::Compound(_) => "compound",
        Expr::Invoke(_) => "invoke",
        Expr::Seal(..) => "seal",
        Expr::Loc(_) => "location",
        Expr::CellRef(_) => "cell reference",
        Expr::Data(_) => "datatype operation",
        Expr::Variant(_) => "variant",
    }
}
