//! The small-step reduction relation (paper Fig. 11 plus the standard
//! rules for functions, assignments, and state).
//!
//! [`Reducer::step`] performs exactly one leftmost-outermost reduction,
//! rebuilding the evaluation-context spine around the contractum. The
//! rules:
//!
//! * `invoke (unit …) with x=v…  ⟶  [v̄/x̄](letrec … in e_b)`;
//! * `compound … link v₁ … v₂ …  ⟶  unit …` (merged, α-renamed);
//! * `letrec` allocates one store cell per definition, replaces each
//!   defined variable with a cell reference, and sequences the cell
//!   initializations before the body;
//! * the usual β, δ, `if`, `let`, sequencing, projection, and assignment
//!   rules, with hash tables living in the store.

use std::collections::HashMap;
use std::sync::Arc;

use units_kernel::{
    subst_vals, DataOp, DataRole, Expr, Lit, NameGen, PrimOp, Symbol, TypeDefn, VariantVal,
};
use units_runtime::{Limits, Machine, RuntimeError};

use crate::merge::merge_compound;
use crate::store::Store;

/// The result of one reduction attempt.
#[derive(Debug)]
pub enum Step {
    /// The expression was already a value.
    Value,
    /// One reduction was performed; here is the new expression.
    Reduced(Expr),
}

/// The rewriting machine: store, fresh names, fuel, and output.
#[derive(Debug)]
pub struct Reducer {
    /// The store σ.
    pub store: Store,
    /// Fresh-name supply for α-renaming.
    pub gen: NameGen,
    /// Fuel and output buffer (shared type with the cells backend).
    pub machine: Machine,
    /// Reductions performed so far (monotonic over the reducer's life).
    steps: u64,
    /// Which redex the in-flight step contracted — the Reduce-phase
    /// event kind, set at each contraction site.
    last_redex: &'static str,
    /// Fault injection for divergence-diagnosis tests: after this many
    /// steps, every integer δ-result is off by one.
    #[cfg(feature = "trace")]
    diverge_after: Option<u64>,
}

impl Reducer {
    /// A reducer with no step limit.
    pub fn new() -> Reducer {
        Reducer::with_machine(Machine::new())
    }

    /// A reducer that gives up with [`RuntimeError::ResourceExhausted`]
    /// after `fuel` steps.
    pub fn with_fuel(fuel: u64) -> Reducer {
        Reducer::with_machine(Machine::with_fuel(fuel))
    }

    /// A reducer governed by the full [`Limits`] budget set: fuel,
    /// spine depth, and store cells.
    pub fn with_limits(limits: Limits) -> Reducer {
        Reducer::with_machine(Machine::with_limits(limits))
    }

    fn with_machine(machine: Machine) -> Reducer {
        Reducer {
            store: Store::new(),
            gen: NameGen::new(),
            machine,
            steps: 0,
            last_redex: "step/context",
            #[cfg(feature = "trace")]
            diverge_after: None,
        }
    }

    /// How many reduction steps this reducer has performed — the
    /// Fig. 11 step count reported by `:profile` and checked against
    /// the Reduce-phase event stream in `tests/tracing.rs`.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Deliberately breaks the reducer for testing the divergence
    /// report: once `steps` reductions have happened, every integer
    /// result a δ-rule produces is off by one, so the backends' prim
    /// event streams disagree at the first post-threshold primitive.
    #[cfg(feature = "trace")]
    pub fn inject_divergence_after(&mut self, steps: u64) {
        self.diverge_after = Some(steps);
    }

    /// Reduces an expression all the way to a value.
    ///
    /// Clones `expr` up front (a recursive operation on the term):
    /// callers reducing terms deeper than the Rust stack should build
    /// the term by value and use [`Reducer::reduce_owned`].
    ///
    /// # Errors
    ///
    /// Any [`RuntimeError`] a reduction rule signals, including
    /// [`RuntimeError::ResourceExhausted`] when a [`Limits`] budget runs
    /// out.
    pub fn reduce_to_value(&mut self, expr: &Expr) -> Result<Expr, RuntimeError> {
        self.reduce_owned(expr.clone())
    }

    /// Reduces an owned expression all the way to a value.
    ///
    /// The leftmost-outermost redex search keeps the evaluation-context
    /// spine as an explicit worklist (a `Vec` of parent frames with the
    /// active child hole punched out), so term depth never translates
    /// into Rust-stack depth: the only depth limit is the
    /// `Limits::max_depth` budget, and a 50 000-deep `let` chain reduces
    /// in constant stack space.
    ///
    /// # Errors
    ///
    /// As for [`Reducer::reduce_to_value`].
    pub fn reduce_owned(&mut self, expr: Expr) -> Result<Expr, RuntimeError> {
        let _timer = units_trace::time("reduce");
        // Parent frames above the current focus; `usize` is the child
        // index the focus was taken from (see `child_slot`). Each frame
        // holds a void placeholder in that slot, so dropping the spine
        // on an error never recurses deeply either.
        let mut spine: Vec<(Expr, usize)> = Vec::new();
        let mut current = expr;
        loop {
            if current.is_value() {
                match spine.pop() {
                    None => return Ok(current),
                    Some((mut parent, idx)) => {
                        put_child(&mut parent, idx, current);
                        current = parent;
                    }
                }
            } else if let Some(idx) = search_child(&current) {
                self.machine.check_depth(spine.len() as u64 + 1)?;
                let child = take_child(&mut current, idx);
                spine.push((current, idx));
                current = child;
            } else {
                // `current` is the leftmost-outermost redex. Everything
                // left of the hole is already a value, so contracting
                // here and resuming in place is the same reduction
                // sequence a from-the-root search would produce.
                units_trace::faults::trip("reduce/step")?;
                self.machine.step()?;
                current = self.contract(current)?;
                self.steps += 1;
                units_trace::emit(
                    units_trace::Phase::Reduce,
                    self.last_redex,
                    None,
                    || self.steps.to_string(),
                    &[
                        ("reduce/steps", 1),
                        ("reduce/store_size", self.store.len() as u64),
                    ],
                );
            }
        }
    }

    /// Reduces, recording every intermediate expression (the reduction
    /// sequence, for traces and tests). The first element is the input;
    /// the last is the value.
    ///
    /// # Errors
    ///
    /// As for [`Reducer::reduce_to_value`].
    pub fn trace(&mut self, expr: &Expr) -> Result<Vec<Expr>, RuntimeError> {
        let mut states = vec![expr.clone()];
        loop {
            let last = states.last().expect("non-empty");
            match self.step(last)? {
                Step::Value => return Ok(states),
                Step::Reduced(next) => states.push(next),
            }
        }
    }

    /// Performs one reduction step, if the expression is not a value.
    ///
    /// Runs the same worklist search as [`Reducer::reduce_owned`] (the
    /// spine is a `Vec`, never Rust recursion) on a clone of `expr` and
    /// rebuilds the whole expression around the contractum.
    ///
    /// # Errors
    ///
    /// Any [`RuntimeError`] the contracted redex signals.
    pub fn step(&mut self, expr: &Expr) -> Result<Step, RuntimeError> {
        if expr.is_value() {
            return Ok(Step::Value);
        }
        units_trace::faults::trip("reduce/step")?;
        self.machine.step()?;
        let mut spine: Vec<(Expr, usize)> = Vec::new();
        let mut current = expr.clone();
        while let Some(idx) = search_child(&current) {
            self.machine.check_depth(spine.len() as u64 + 1)?;
            let child = take_child(&mut current, idx);
            spine.push((current, idx));
            current = child;
        }
        current = self.contract(current)?;
        self.steps += 1;
        units_trace::emit(
            units_trace::Phase::Reduce,
            self.last_redex,
            None,
            || self.steps.to_string(),
            &[("reduce/steps", 1), ("reduce/store_size", self.store.len() as u64)],
        );
        while let Some((mut parent, idx)) = spine.pop() {
            put_child(&mut parent, idx, current);
            current = parent;
        }
        Ok(Step::Reduced(current))
    }

    /// Contracts the leftmost-outermost redex, which [`search_child`]
    /// has located: every proper subterm left of the focus is a value.
    fn contract(&mut self, expr: Expr) -> Result<Expr, RuntimeError> {
        debug_assert!(!expr.is_value());
        match expr {
            Expr::App(f, args) => self.apply(*f, args),
            Expr::If(c, t, e) => {
                self.last_redex = "step/if";
                match *c {
                    Expr::Lit(Lit::Bool(true)) => Ok(*t),
                    Expr::Lit(Lit::Bool(false)) => Ok(*e),
                    ref other => Err(RuntimeError::WrongType {
                        expected: "a boolean",
                        found: crate::render(other),
                    }),
                }
            }
            Expr::Seq(mut es) => {
                self.last_redex = "step/seq";
                match es.len() {
                    0 => Ok(Expr::void()),
                    1 => Ok(es.pop().expect("non-empty")),
                    _ => {
                        es.remove(0);
                        Ok(Expr::seq(es))
                    }
                }
            }
            Expr::Let(bindings, body) => {
                self.last_redex = "step/let";
                let map: HashMap<Symbol, Expr> =
                    bindings.into_iter().map(|b| (b.name, b.expr)).collect();
                Ok(subst_vals(&body, &map, &mut self.gen))
            }
            Expr::Letrec(lr) => self.reduce_letrec(&lr),
            Expr::Set(target, value) => match *target {
                Expr::CellRef(loc) => {
                    self.last_redex = "step/set";
                    units_trace::faults::trip("reduce/store")?;
                    self.store.write_cell(loc, *value)?;
                    Ok(Expr::void())
                }
                Expr::Var(x) | Expr::VarAt(x, _) => Err(RuntimeError::Unbound { name: x }),
                ref other => Err(RuntimeError::WrongType {
                    expected: "an assignable cell",
                    found: crate::render(other),
                }),
            },
            Expr::Proj(i, e) => {
                self.last_redex = "step/proj";
                match *e {
                    Expr::Tuple(mut items) => {
                        if i < items.len() {
                            Ok(items.swap_remove(i))
                        } else {
                            Err(RuntimeError::BadProjection { index: i, width: items.len() })
                        }
                    }
                    ref other => Err(RuntimeError::WrongType {
                        expected: "a tuple",
                        found: crate::render(other),
                    }),
                }
            }
            Expr::CellRef(loc) => {
                self.last_redex = "step/cell-read";
                units_trace::faults::trip("reduce/store")?;
                Ok(self.store.read_cell(loc)?.clone())
            }
            Expr::Compound(c) => {
                units_trace::faults::trip("reduce/merge")?;
                let units = crate::merge::constituent_units(&c)?;
                self.last_redex = "step/compound";
                let merged = merge_compound(&c, &units, &mut self.gen)?;
                Ok(Expr::Unit(Arc::new(merged)))
            }
            Expr::Invoke(inv) => self.reduce_invoke(&inv),
            Expr::Seal(e, sig) => {
                self.last_redex = "step/seal";
                match *e {
                    Expr::Unit(ref u) => {
                        for port in &sig.exports.vals {
                            if u.exports.val_port(&port.name).is_none() {
                                return Err(RuntimeError::SealFailure {
                                    reason: format!(
                                        "signature exports `{}`, unit does not",
                                        port.name
                                    ),
                                });
                            }
                        }
                        let mut narrowed = (**u).clone();
                        narrowed.exports = sig.exports.clone();
                        Ok(Expr::Unit(Arc::new(narrowed)))
                    }
                    ref other => Err(RuntimeError::NotAUnit {
                        rule: "seal",
                        found: crate::render(other),
                    }),
                }
            }
            Expr::Var(x) | Expr::VarAt(x, _) => Err(RuntimeError::Unbound { name: x }),
            // A non-value Tuple/Variant always has a non-value child, so
            // the search never stops on one; values never reach here.
            Expr::Tuple(_)
            | Expr::Variant(_)
            | Expr::Lit(_)
            | Expr::Lambda(_)
            | Expr::Prim(..)
            | Expr::Unit(_)
            | Expr::Loc(_)
            | Expr::Data(_) => unreachable!("not a redex"),
        }
    }

    /// `letrec` allocates cells, rewrites defined variables to cell
    /// references, and sequences the initializations before the body
    /// (Fig. 11's `invoke` rule reduces to exactly this form).
    fn reduce_letrec(&mut self, lr: &units_kernel::LetrecExpr) -> Result<Expr, RuntimeError> {
        self.last_redex = "step/letrec";
        let mut map: HashMap<Symbol, Expr> = HashMap::new();
        // Datatype definitions: fresh instance, operations become values.
        for td in &lr.types {
            if let TypeDefn::Data(d) = td {
                let instance = self.machine.fresh_instance();
                for (tag, v) in d.variants.iter().enumerate() {
                    map.insert(
                        v.ctor.clone(),
                        Expr::Data(Arc::new(DataOp {
                            ty_name: d.name.clone(),
                            instance,
                            role: DataRole::Construct(tag),
                        })),
                    );
                    map.insert(
                        v.dtor.clone(),
                        Expr::Data(Arc::new(DataOp {
                            ty_name: d.name.clone(),
                            instance,
                            role: DataRole::Deconstruct(tag),
                        })),
                    );
                }
                map.insert(
                    d.predicate.clone(),
                    Expr::Data(Arc::new(DataOp {
                        ty_name: d.name.clone(),
                        instance,
                        role: DataRole::Predicate,
                    })),
                );
            }
        }
        // Value definitions: one cell each.
        units_trace::faults::trip("reduce/store")?;
        self.machine.alloc_cells(lr.vals.len() as u64)?;
        let mut cells = Vec::with_capacity(lr.vals.len());
        for defn in &lr.vals {
            let loc = self.store.alloc_cell();
            cells.push(loc);
            map.insert(defn.name.clone(), Expr::CellRef(loc));
        }
        // Cell initializations in definition order, then the body.
        let mut steps = Vec::with_capacity(lr.vals.len() + 1);
        for (defn, loc) in lr.vals.iter().zip(&cells) {
            let body = subst_vals(&defn.body, &map, &mut self.gen);
            steps.push(Expr::Set(Box::new(Expr::CellRef(*loc)), Box::new(body)));
        }
        steps.push(subst_vals(&lr.body, &map, &mut self.gen));
        Ok(Expr::seq(steps))
    }

    /// The `invoke` reduction of Fig. 11.
    fn reduce_invoke(&mut self, inv: &units_kernel::InvokeExpr) -> Result<Expr, RuntimeError> {
        let Expr::Unit(unit) = &inv.target else {
            return Err(RuntimeError::NotAUnit {
                rule: "invoke",
                found: crate::render(&inv.target),
            });
        };
        self.last_redex = "step/invoke";
        // The with clause must cover the unit's imports.
        let mut map: HashMap<Symbol, Expr> = HashMap::new();
        for port in &unit.imports.vals {
            match inv.val_links.iter().find(|(n, _)| n == &port.name) {
                Some((_, v)) => {
                    map.insert(port.name.clone(), v.clone());
                }
                None => {
                    return Err(RuntimeError::UnsatisfiedImport { name: port.name.clone() })
                }
            }
        }
        // [v̄/x̄](letrec defns in init)
        let letrec = Expr::Letrec(Arc::new(units_kernel::LetrecExpr {
            types: unit.types.clone(),
            vals: unit.vals.clone(),
            body: unit.init.clone(),
        }));
        Ok(subst_vals(&letrec, &map, &mut self.gen))
    }

    /// Function application redexes: β, δ, datatype operations.
    fn apply(&mut self, f: Expr, args: Vec<Expr>) -> Result<Expr, RuntimeError> {
        match f {
            Expr::Lambda(lam) => {
                if lam.params.len() != args.len() {
                    return Err(RuntimeError::Arity {
                        expected: lam.params.len(),
                        found: args.len(),
                    });
                }
                self.last_redex = "step/beta";
                let map: HashMap<Symbol, Expr> = lam
                    .params
                    .iter()
                    .zip(args)
                    .map(|(p, a)| (p.name.clone(), a))
                    .collect();
                Ok(subst_vals(&lam.body, &map, &mut self.gen))
            }
            Expr::Prim(op, _) => self.delta(op, &args),
            Expr::Data(ref op) => self.apply_data(op, &args),
            ref other => {
                Err(RuntimeError::NotAFunction { found: crate::render(other) })
            }
        }
    }

    fn apply_data(&mut self, op: &DataOp, args: &[Expr]) -> Result<Expr, RuntimeError> {
        self.last_redex = "step/data";
        let [arg] = args else {
            return Err(RuntimeError::Arity { expected: 1, found: args.len() });
        };
        match op.role {
            DataRole::Construct(tag) => Ok(Expr::Variant(Arc::new(VariantVal {
                ty_name: op.ty_name.clone(),
                instance: op.instance,
                tag,
                payload: arg.clone(),
            }))),
            DataRole::Deconstruct(tag) => {
                let v = self.expect_own_variant(op, arg)?;
                if v.tag != tag {
                    return Err(RuntimeError::WrongVariant {
                        ty_name: op.ty_name.clone(),
                        expected: tag,
                        found: v.tag,
                    });
                }
                Ok(v.payload.clone())
            }
            DataRole::Predicate => {
                let v = self.expect_own_variant(op, arg)?;
                Ok(Expr::bool(v.tag == 0))
            }
        }
    }

    fn expect_own_variant<'a>(
        &self,
        op: &DataOp,
        arg: &'a Expr,
    ) -> Result<&'a VariantVal, RuntimeError> {
        match arg {
            Expr::Variant(v) if v.ty_name == op.ty_name && v.instance == op.instance => Ok(v),
            Expr::Variant(v) if v.ty_name == op.ty_name => {
                Err(RuntimeError::ForeignInstance { ty_name: op.ty_name.clone() })
            }
            other => Err(RuntimeError::WrongType {
                expected: "a datatype value of the defining instance",
                found: crate::render(other),
            }),
        }
    }

    /// δ-rules for primitives. Hash tables live in the store, so this is
    /// the only place the substitution semantics touches σ apart from
    /// definition cells.
    fn delta(&mut self, op: PrimOp, args: &[Expr]) -> Result<Expr, RuntimeError> {
        self.last_redex = "step/delta";
        units_trace::faults::trip("reduce/prim")?;
        #[allow(unused_mut)]
        let mut result = self.delta_result(op, args)?;
        #[cfg(feature = "trace")]
        if self.diverge_after.is_some_and(|after| self.steps >= after) {
            if let Expr::Lit(Lit::Int(n)) = &result {
                result = Expr::int(n.wrapping_add(1));
            }
        }
        units_trace::emit(
            units_trace::Phase::Reduce,
            "prim",
            None,
            || {
                units_runtime::render_prim_call(
                    op,
                    args.iter().map(ground_expr),
                    &ground_expr(&result),
                )
            },
            &[("reduce/prim_calls", 1)],
        );
        Ok(result)
    }

    /// The δ-function proper: the table of primitive contractions.
    fn delta_result(&mut self, op: PrimOp, args: &[Expr]) -> Result<Expr, RuntimeError> {
        use Expr::Lit as L;
        if args.len() != op.arity() {
            return Err(RuntimeError::Arity { expected: op.arity(), found: args.len() });
        }
        let int = |e: &Expr| match e {
            L(Lit::Int(n)) => Ok(*n),
            other => Err(RuntimeError::WrongType {
                expected: "an integer",
                found: crate::render(other),
            }),
        };
        let boolean = |e: &Expr| match e {
            L(Lit::Bool(b)) => Ok(*b),
            other => Err(RuntimeError::WrongType {
                expected: "a boolean",
                found: crate::render(other),
            }),
        };
        let string = |e: &Expr| match e {
            L(Lit::Str(s)) => Ok(s.clone()),
            other => Err(RuntimeError::WrongType {
                expected: "a string",
                found: crate::render(other),
            }),
        };
        let loc = |e: &Expr| match e {
            Expr::Loc(l) => Ok(*l),
            other => Err(RuntimeError::WrongType {
                expected: "a hash table",
                found: crate::render(other),
            }),
        };
        Ok(match op {
            PrimOp::Add => Expr::int(int(&args[0])?.wrapping_add(int(&args[1])?)),
            PrimOp::Sub => Expr::int(int(&args[0])?.wrapping_sub(int(&args[1])?)),
            PrimOp::Mul => Expr::int(int(&args[0])?.wrapping_mul(int(&args[1])?)),
            PrimOp::Div => {
                let (a, b) = (int(&args[0])?, int(&args[1])?);
                if b == 0 {
                    return Err(RuntimeError::DivisionByZero);
                }
                Expr::int(a.wrapping_div(b))
            }
            PrimOp::Rem => {
                let (a, b) = (int(&args[0])?, int(&args[1])?);
                if b == 0 {
                    return Err(RuntimeError::DivisionByZero);
                }
                Expr::int(a.wrapping_rem(b))
            }
            PrimOp::Lt => Expr::bool(int(&args[0])? < int(&args[1])?),
            PrimOp::Le => Expr::bool(int(&args[0])? <= int(&args[1])?),
            PrimOp::NumEq => Expr::bool(int(&args[0])? == int(&args[1])?),
            PrimOp::Not => Expr::bool(!boolean(&args[0])?),
            PrimOp::BoolEq => Expr::bool(boolean(&args[0])? == boolean(&args[1])?),
            PrimOp::StrAppend => {
                Expr::str(format!("{}{}", string(&args[0])?, string(&args[1])?))
            }
            PrimOp::StrEq => Expr::bool(string(&args[0])? == string(&args[1])?),
            PrimOp::StrLen => Expr::int(string(&args[0])?.chars().count() as i64),
            PrimOp::IntToStr => Expr::str(int(&args[0])?.to_string()),
            PrimOp::Display => {
                self.machine.write(&*string(&args[0])?);
                Expr::void()
            }
            PrimOp::Fail => {
                return Err(RuntimeError::User { message: string(&args[0])?.to_string() })
            }
            PrimOp::HashNew => {
                self.machine.alloc_cells(1)?;
                Expr::Loc(self.store.alloc_hash())
            }
            PrimOp::HashSet => {
                let l = loc(&args[0])?;
                let key = string(&args[1])?.to_string();
                self.store.hash_mut(l)?.insert(key, args[2].clone());
                Expr::void()
            }
            PrimOp::HashGet => {
                let l = loc(&args[0])?;
                let key = string(&args[1])?;
                self.store
                    .hash(l)?
                    .get(&*key)
                    .cloned()
                    .ok_or_else(|| RuntimeError::MissingKey { key: key.to_string() })?
            }
            PrimOp::HashHas => {
                let l = loc(&args[0])?;
                Expr::bool(self.store.hash(l)?.contains_key(&*string(&args[1])?))
            }
            PrimOp::HashRemove => {
                let l = loc(&args[0])?;
                let key = string(&args[1])?;
                self.store.hash_mut(l)?.remove(&*key);
                Expr::void()
            }
            PrimOp::HashCount => {
                let l = loc(&args[0])?;
                Expr::int(self.store.hash(l)?.len() as i64)
            }
        })
    }
}

impl Default for Reducer {
    fn default() -> Self {
        Reducer::new()
    }
}

/// The child index the leftmost-outermost search must descend into, or
/// `None` when `expr` is itself the redex. `expr` must not be a value.
/// Indices follow [`child_slot`]'s numbering.
fn search_child(expr: &Expr) -> Option<usize> {
    match expr {
        Expr::App(f, args) => {
            if !f.is_value() {
                return Some(0);
            }
            args.iter().position(|a| !a.is_value()).map(|i| i + 1)
        }
        Expr::If(c, ..) => (!c.is_value()).then_some(0),
        Expr::Seq(es) => match es.first() {
            Some(e) if !e.is_value() => Some(0),
            _ => None,
        },
        Expr::Let(bindings, _) => bindings.iter().position(|b| !b.expr.is_value()),
        // Assignment evaluates its right-hand side only once the target
        // has become a cell; any other target is an error the
        // contraction reports.
        Expr::Set(target, value) => match (&**target, value.is_value()) {
            (Expr::CellRef(_), false) => Some(1),
            _ => None,
        },
        Expr::Tuple(items) => items.iter().position(|e| !e.is_value()),
        Expr::Proj(_, e) => (!e.is_value()).then_some(0),
        // A non-value Variant's payload is still reducing (transient).
        Expr::Variant(_) => Some(0),
        Expr::Compound(c) => c.links.iter().position(|l| !l.expr.is_value()),
        Expr::Invoke(inv) => {
            if !inv.target.is_value() {
                return Some(0);
            }
            inv.val_links.iter().position(|(_, e)| !e.is_value()).map(|i| i + 1)
        }
        Expr::Seal(e, _) => (!e.is_value()).then_some(0),
        Expr::Letrec(_) | Expr::CellRef(_) | Expr::Var(_) | Expr::VarAt(..) => None,
        // Values never enter the search.
        Expr::Lit(_)
        | Expr::Lambda(_)
        | Expr::Prim(..)
        | Expr::Unit(_)
        | Expr::Loc(_)
        | Expr::Data(_) => None,
    }
}

/// The mutable slot for child `idx` of `parent`, in [`search_child`]'s
/// numbering: slot 0 is the head position (function, condition,
/// target…), slots `1 + i` the i-th element of the trailing vector
/// where one exists.
fn child_slot(parent: &mut Expr, idx: usize) -> &mut Expr {
    match parent {
        Expr::App(f, args) => {
            if idx == 0 {
                f
            } else {
                &mut args[idx - 1]
            }
        }
        Expr::If(c, ..) => c,
        Expr::Seq(es) | Expr::Tuple(es) => &mut es[idx],
        Expr::Let(bindings, _) => &mut bindings[idx].expr,
        Expr::Set(_, value) => value,
        Expr::Proj(_, e) => e,
        Expr::Variant(v) => &mut Arc::make_mut(v).payload,
        Expr::Compound(c) => &mut Arc::make_mut(c).links[idx].expr,
        Expr::Invoke(inv) => {
            let inv = Arc::make_mut(inv);
            if idx == 0 {
                &mut inv.target
            } else {
                &mut inv.val_links[idx - 1].1
            }
        }
        Expr::Seal(e, _) => e,
        _ => unreachable!("node has no reducible children"),
    }
}

/// Removes child `idx` from `parent`, leaving a void placeholder. The
/// placeholder keeps every spine frame shallow: cloning or dropping a
/// frame never traverses the term below the hole.
fn take_child(parent: &mut Expr, idx: usize) -> Expr {
    std::mem::replace(child_slot(parent, idx), Expr::void())
}

/// Restores child `idx` of `parent` (undoes [`take_child`]).
fn put_child(parent: &mut Expr, idx: usize, child: Expr) {
    *child_slot(parent, idx) = child;
}

/// Ground rendering of a reducer expression for prim events — formats
/// match `units-runtime`'s value rendering exactly so the two backends'
/// `"prim"` payload streams are comparable.
fn ground_expr(e: &Expr) -> String {
    match e {
        Expr::Lit(Lit::Int(n)) => n.to_string(),
        Expr::Lit(Lit::Bool(b)) => b.to_string(),
        Expr::Lit(Lit::Str(s)) => format!("{s:?}"),
        Expr::Lit(Lit::Void) => "void".to_string(),
        _ => "·".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use units_syntax::parse_expr;

    fn run(src: &str) -> Result<Expr, RuntimeError> {
        let e = parse_expr(src).unwrap_or_else(|err| panic!("parse: {err}"));
        Reducer::new().reduce_to_value(&e)
    }

    fn run_ok(src: &str) -> Expr {
        run(src).unwrap_or_else(|err| panic!("runtime: {err}"))
    }

    #[test]
    fn arithmetic_reduces() {
        assert_eq!(run_ok("(+ (* 2 3) 4)"), Expr::int(10));
        assert_eq!(run_ok("(if (< 1 2) \"a\" \"b\")"), Expr::str("a"));
    }

    #[test]
    fn beta_reduction_is_capture_avoiding() {
        assert_eq!(run_ok("(((lambda (x) (lambda (y) x)) 5) 6)"), Expr::int(5));
    }

    #[test]
    fn let_is_parallel() {
        assert_eq!(run_ok("(let ((x 1)) (let ((x 2) (y x)) y))"), Expr::int(1));
    }

    #[test]
    fn letrec_supports_mutual_recursion() {
        let src = "(letrec ((define even (lambda (n) (if (= n 0) true (odd (- n 1)))))
                            (define odd (lambda (n) (if (= n 0) false (even (- n 1))))))
                     (odd 11))";
        assert_eq!(run_ok(src), Expr::bool(true));
    }

    #[test]
    fn set_mutates_definition_cells() {
        let src = "(letrec ((define counter 0))
                     (set! counter (+ counter 1))
                     (set! counter (+ counter 10))
                     counter)";
        assert_eq!(run_ok(src), Expr::int(11));
    }

    #[test]
    fn hash_tables_work_in_the_store() {
        let src = "(let ((t (hash-new)))
                     (hash-set! t \"a\" 1)
                     (hash-set! t \"b\" 2)
                     (+ (hash-get t \"a\") (hash-count t)))";
        assert_eq!(run_ok(src), Expr::int(3));
    }

    #[test]
    fn invoke_reduces_to_letrec_per_fig11() {
        // One step of `invoke (unit …) with x=v` yields a letrec with the
        // import substituted.
        let e = parse_expr(
            "(invoke (unit (import base) (export) (define f (lambda () base)) (init (f)))
                     (val base 42))",
        )
        .unwrap();
        let mut r = Reducer::new();
        let stepped = match r.step(&e).unwrap() {
            Step::Reduced(e) => e,
            Step::Value => panic!("should step"),
        };
        assert!(matches!(stepped, Expr::Letrec(_)), "got {stepped:?}");
        // And all the way: 42.
        assert_eq!(r.reduce_to_value(&stepped).unwrap(), Expr::int(42));
    }

    #[test]
    fn invoke_missing_import_errors() {
        let err = run("(invoke (unit (import x) (export) (init x)))").unwrap_err();
        assert!(matches!(err, RuntimeError::UnsatisfiedImport { name } if name.as_str() == "x"));
    }

    #[test]
    fn compound_reduces_to_merged_unit_then_invokes() {
        let src = "(invoke (compound (import) (export)
            (link ((unit (import odd) (export even)
                     (define even (lambda (n) (if (= n 0) true (odd (- n 1))))))
                   (with odd) (provides even))
                  ((unit (import even) (export odd)
                     (define odd (lambda (n) (if (= n 0) false (even (- n 1)))))
                     (init (odd 13)))
                   (with even) (provides odd)))))";
        assert_eq!(run_ok(src), Expr::bool(true));
    }

    #[test]
    fn defs_run_before_inits_across_constituents() {
        let src = "(invoke (compound (import) (export)
            (link ((unit (import later) (export)
                     (init (display \"first\") (later)))
                   (with later) (provides))
                  ((unit (import) (export later)
                     (define later (lambda () (display \"from-later\") void))
                     (init (display \"second\")))
                   (with) (provides later)))))";
        let e = parse_expr(src).unwrap();
        let mut r = Reducer::new();
        r.reduce_to_value(&e).unwrap();
        assert_eq!(r.machine.output(), ["first", "from-later", "second"]);
    }

    #[test]
    fn datatype_round_trip_and_wrong_variant() {
        let src = "(letrec ((datatype t (mk unmk int) (no unno void) t?))
                     (unmk (mk 7)))";
        assert_eq!(run_ok(src), Expr::int(7));
        let src = "(letrec ((datatype t (mk unmk int) (no unno void) t?))
                     (unno (mk 7)))";
        assert!(matches!(run(src).unwrap_err(), RuntimeError::WrongVariant { .. }));
        let src = "(letrec ((datatype t (mk unmk int) (no unno void) t?))
                     (tuple (t? (mk 7)) (t? (no void))))";
        assert_eq!(
            run_ok(src),
            Expr::Tuple(vec![Expr::bool(true), Expr::bool(false)])
        );
    }

    #[test]
    fn two_instances_of_a_datatype_do_not_mix() {
        let src = "(let ((make (lambda ()
                       (invoke (unit (import) (export)
                         (datatype sym (mk unmk str) sym?)
                         (init (tuple mk unmk)))))))
                     (let ((a (make)) (b (make)))
                       ((proj 1 b) ((proj 0 a) \"x\"))))";
        assert!(matches!(
            run(src).unwrap_err(),
            RuntimeError::ForeignInstance { ty_name } if ty_name.as_str() == "sym"
        ));
    }

    #[test]
    fn seal_narrows_exports() {
        let err = run(
            "(invoke (compound (import) (export)
               (link ((seal (unit (import) (export a) (define a 1))
                            (sig (import) (export) (init void)))
                      (with) (provides a)))))",
        )
        .unwrap_err();
        assert!(matches!(err, RuntimeError::MissingProvide { name } if name.as_str() == "a"));
    }

    #[test]
    fn fuel_prevents_divergence() {
        let src = "(letrec ((define loop (lambda () (loop)))) (loop))";
        let e = parse_expr(src).unwrap();
        let err = Reducer::with_fuel(10_000).reduce_to_value(&e).unwrap_err();
        assert!(matches!(
            err,
            RuntimeError::ResourceExhausted { resource: units_runtime::Resource::Fuel, limit: 10_000 }
        ));
    }

    /// Regression test for the recursive redex search: a ~50k-deep `let`
    /// chain in binding position used to overflow the Rust stack before
    /// the search became an explicit worklist. The term is built (and
    /// reduced) without ever recursing on its depth.
    #[test]
    fn deep_let_chains_reduce_in_constant_stack() {
        let mut e = Expr::int(1);
        for _ in 0..50_000 {
            e = Expr::Let(
                vec![units_kernel::Binding { name: "x".into(), expr: e }],
                Box::new(Expr::var("x")),
            );
        }
        let mut r = Reducer::new();
        assert_eq!(r.reduce_owned(e).unwrap(), Expr::int(1));
        assert_eq!(r.steps(), 50_000);
    }

    #[test]
    fn max_depth_is_the_only_depth_limit() {
        let mut e = Expr::int(1);
        for _ in 0..100 {
            e = Expr::Let(
                vec![units_kernel::Binding { name: "x".into(), expr: e }],
                Box::new(Expr::var("x")),
            );
        }
        let mut r = Reducer::with_limits(Limits::none().max_depth(10));
        let err = r.reduce_owned(e).unwrap_err();
        assert!(matches!(
            err,
            RuntimeError::ResourceExhausted { resource: units_runtime::Resource::Depth, limit: 10 }
        ));
    }

    #[test]
    fn store_cell_budget_bounds_letrec_allocation() {
        let src = "(letrec ((define a 1) (define b 2) (define c 3)) a)";
        let e = parse_expr(src).unwrap();
        let err = Reducer::with_limits(Limits::none().max_store_cells(2))
            .reduce_to_value(&e)
            .unwrap_err();
        assert!(matches!(
            err,
            RuntimeError::ResourceExhausted {
                resource: units_runtime::Resource::StoreCells,
                limit: 2
            }
        ));
    }

    #[test]
    fn traces_record_every_state() {
        let e = parse_expr("(+ 1 (+ 2 3))").unwrap();
        let mut r = Reducer::new();
        let states = r.trace(&e).unwrap();
        assert_eq!(states.first().unwrap(), &e);
        assert_eq!(states.last().unwrap(), &Expr::int(6));
        // (+ 1 (+ 2 3)) → (+ 1 5) → 6
        assert_eq!(states.len(), 3);
    }

    #[test]
    fn multiple_invocations_get_fresh_cells() {
        let src = "(let ((u (unit (import) (export)
                      (define counter 0)
                      (init (set! counter (+ counter 1)) counter))))
                     (tuple (invoke u) (invoke u)))";
        assert_eq!(run_ok(src), Expr::Tuple(vec![Expr::int(1), Expr::int(1)]));
    }

    #[test]
    fn undefined_reads_are_runtime_errors() {
        // MzScheme-strictness behaviour: reading a definition before its
        // expression has run (the reducer always detects this; the paper
        // level forbids it statically instead).
        let src = "(letrec ((define a b) (define b 1)) a)";
        let err = run(src).unwrap_err();
        assert!(matches!(err, RuntimeError::UndefinedRead { .. }));
    }
}
