//! The `compound` reduction: merging constituent units into one
//! (paper Fig. 11, illustrated graphically in Fig. 8).
//!
//! "The second rule defines how a compound expression combines two units:
//! their definitions are merged and their initialization expressions are
//! sequenced. … all bindings introduced by definitions in the two units
//! must be appropriately α-renamed to avoid collisions."
//!
//! Linking is by name: a constituent's import either carries the name of a
//! compound import or the name of another constituent's provided export,
//! so linked names are simply *kept*, and only non-provided internal
//! definitions are freshened.

use std::collections::{BTreeSet, HashMap};

use units_kernel::{
    subst_vals, DataDefn, DataVariant, Expr, NameGen, Symbol, TypeDefn, UnitExpr, ValDefn,
};
use units_runtime::RuntimeError;

/// Extracts the constituent unit values a `compound` is about to merge.
///
/// The Fig. 11 `compound` rule only fires once every linked constituent
/// has reduced to an atomic unit value; a non-unit constituent is the
/// typed [`RuntimeError::NotAUnit`] naming the rule mid-fire, never a
/// panic.
///
/// # Errors
///
/// [`RuntimeError::NotAUnit`] for the first non-unit constituent.
pub fn constituent_units(
    compound: &units_kernel::CompoundExpr,
) -> Result<Vec<std::sync::Arc<UnitExpr>>, RuntimeError> {
    compound
        .links
        .iter()
        .map(|l| match &l.expr {
            Expr::Unit(u) => Ok(u.clone()),
            other => Err(RuntimeError::NotAUnit {
                rule: "compound",
                found: crate::render(other),
            }),
        })
        .collect()
}

/// Merges fully evaluated constituents into a single atomic unit.
///
/// Each element of `links` is `(unit, with, provides)` where `unit` must
/// be an atomic [`Expr::Unit`] value (the step function reduces inner
/// compounds first).
///
/// # Errors
///
/// * [`RuntimeError::ExcessImport`] — a constituent imports a name its
///   `with` clause does not grant;
/// * [`RuntimeError::MissingProvide`] — a constituent does not export a
///   promised name.
pub fn merge_compound(
    compound: &units_kernel::CompoundExpr,
    units: &[std::sync::Arc<UnitExpr>],
    gen: &mut NameGen,
) -> Result<UnitExpr, RuntimeError> {
    debug_assert_eq!(units.len(), compound.links.len());
    // Side conditions first (Fig. 11's ⊆ requirements).
    for (link, unit) in compound.links.iter().zip(units) {
        for port in &unit.imports.vals {
            if link.with.val_port(&port.name).is_none() {
                return Err(RuntimeError::ExcessImport { name: port.name.clone() });
            }
        }
        for port in &link.provides.vals {
            if unit.exports.val_port(&port.name).is_none() {
                return Err(RuntimeError::MissingProvide { name: port.name.clone() });
            }
        }
        for port in &link.provides.types {
            if unit.exports.ty_port(&port.name).is_none() {
                return Err(RuntimeError::MissingProvide { name: port.name.clone() });
            }
        }
    }

    // Names that must be preserved: compound imports and all provides,
    // under their *outer* names (linking by name in the paper's core form;
    // a rename pair substitutes the outer name for the inner one).
    let mut preserved: BTreeSet<Symbol> =
        compound.imports.vals.iter().map(|p| p.name.clone()).collect();
    let mut preserved_tys: BTreeSet<Symbol> =
        compound.imports.types.iter().map(|p| p.name.clone()).collect();
    for link in &compound.links {
        preserved
            .extend(link.provides.vals.iter().map(|p| link.renames.outer_export_val(&p.name).clone()));
        preserved_tys
            .extend(link.provides.types.iter().map(|p| link.renames.outer_export_ty(&p.name).clone()));
    }

    let mut merged_types = Vec::new();
    let mut merged_vals = Vec::new();
    let mut inits = Vec::new();
    // Names already used in the merged unit, to freshen against.
    let mut used: BTreeSet<Symbol> = preserved.clone();

    for (link, unit) in compound.links.iter().zip(units) {
        // Rename every internal definition that is not provided.
        let mut renames: HashMap<Symbol, Symbol> = HashMap::new();
        let rename_of = |name: &Symbol,
                             provided_as: Option<Symbol>,
                             used: &mut BTreeSet<Symbol>,
                             gen: &mut NameGen|
         -> Symbol {
            if let Some(outer) = provided_as {
                used.insert(outer.clone());
                return outer;
            }
            // Freshen when the name collides with anything preserved or
            // already merged; otherwise keep it for readability.
            if used.insert(name.clone()) {
                name.clone()
            } else {
                let mut fresh = gen.fresh(name);
                while !used.insert(fresh.clone()) {
                    fresh = gen.fresh(name);
                }
                fresh
            }
        };
        let provided_as = |name: &Symbol| {
            link.provides
                .val_port(name)
                .map(|p| link.renames.outer_export_val(&p.name).clone())
        };
        for defn in &unit.vals {
            let new = rename_of(&defn.name, provided_as(&defn.name), &mut used, gen);
            if new != defn.name {
                renames.insert(defn.name.clone(), new);
            }
        }
        for td in &unit.types {
            if let TypeDefn::Data(d) = td {
                for name in d.bound_val_names() {
                    let new = rename_of(&name, provided_as(&name), &mut used, gen);
                    if new != name {
                        renames.insert(name.clone(), new);
                    }
                }
            }
        }
        // Imports link by outer name: a renamed import is substituted to
        // its outer source name in this constituent's bodies.
        for port in &unit.imports.vals {
            let outer = link.renames.outer_import_val(&port.name);
            if outer != &port.name {
                renames.insert(port.name.clone(), outer.clone());
            }
        }

        // Build the substitution for this constituent's bodies: renamed
        // internal definitions map to their fresh names. Imports keep
        // their names (they are linked by name to a compound import or a
        // sibling's provide, both preserved).
        let subst: HashMap<Symbol, Expr> =
            renames.iter().map(|(old, new)| (old.clone(), Expr::Var(new.clone()))).collect();
        let apply = |e: &Expr, gen: &mut NameGen| {
            if subst.is_empty() {
                e.clone()
            } else {
                subst_vals(e, &subst, gen)
            }
        };

        let renamed = |name: &Symbol| renames.get(name).cloned().unwrap_or_else(|| name.clone());

        for td in &unit.types {
            merged_types.push(match td {
                TypeDefn::Data(d) => TypeDefn::Data(DataDefn {
                    name: d.name.clone(),
                    variants: d
                        .variants
                        .iter()
                        .map(|v| DataVariant {
                            ctor: renamed(&v.ctor),
                            dtor: renamed(&v.dtor),
                            payload: v.payload.clone(),
                        })
                        .collect(),
                    predicate: renamed(&d.predicate),
                }),
                TypeDefn::Alias(a) => TypeDefn::Alias(a.clone()),
            });
        }
        for defn in &unit.vals {
            merged_vals.push(ValDefn {
                name: renamed(&defn.name),
                ty: defn.ty.clone(),
                body: apply(&defn.body, gen),
            });
        }
        inits.push(apply(&unit.init, gen));
        let _ = &preserved_tys;
    }

    if inits.is_empty() {
        inits.push(Expr::void());
    }
    Ok(UnitExpr {
        imports: compound.imports.clone(),
        exports: compound.exports.clone(),
        types: merged_types,
        vals: merged_vals,
        init: Expr::seq(inits),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use units_kernel::alpha_eq;
    use units_syntax::parse_expr;

    fn compound_parts(src: &str) -> (units_kernel::CompoundExpr, Vec<std::sync::Arc<UnitExpr>>) {
        let compound = match parse_expr(src).unwrap() {
            Expr::Compound(c) => (*c).clone(),
            ref other => panic!("test source must parse to a compound, got {}", crate::render(other)),
        };
        let units = constituent_units(&compound).unwrap();
        (compound, units)
    }

    #[test]
    fn fig8_merge_matches_the_expected_unit() {
        // compound(Database-like, NumberInfo-like) reduces to the merged
        // atomic unit of Fig. 8 (modulo α-renaming of internals).
        let (c, units) = compound_parts(
            "(compound (import error) (export new numInfo)
               (link ((unit (import mkinfo error) (export new)
                        (define helper (lambda () (mkinfo 1)))
                        (define new (lambda () (helper)))
                        (init (display \"db-up\")))
                      (with mkinfo error) (provides new))
                     ((unit (import) (export mkinfo numInfo)
                        (define mkinfo (lambda (n) n))
                        (define numInfo (lambda (n) (mkinfo n))))
                      (with) (provides mkinfo numInfo))))",
        );
        let mut gen = NameGen::new();
        let merged = merge_compound(&c, &units, &mut gen).unwrap();

        let expected = match parse_expr(
            "(unit (import error) (export new numInfo)
               (define h2 (lambda () (mkinfo 1)))
               (define new (lambda () (h2)))
               (define mkinfo (lambda (n) n))
               (define numInfo (lambda (n) (mkinfo n)))
               (init (begin (display \"db-up\") void)))",
        )
        .unwrap()
        {
            Expr::Unit(u) => u,
            _ => unreachable!(),
        };
        // The merged init is Seq([init1, init2]); the expected text mirrors
        // that shape.
        assert!(
            alpha_eq(&Expr::Unit(merged.clone().into()), &Expr::Unit(expected)),
            "merged unit differs:\n{merged:#?}"
        );
    }

    #[test]
    fn colliding_internal_names_are_freshened() {
        let (c, units) = compound_parts(
            "(compound (import) (export a b)
               (link ((unit (import) (export a)
                        (define helper (lambda () 1))
                        (define a (lambda () (helper))))
                      (with) (provides a))
                     ((unit (import) (export b)
                        (define helper (lambda () 2))
                        (define b (lambda () (helper))))
                      (with) (provides b))))",
        );
        let mut gen = NameGen::new();
        let merged = merge_compound(&c, &units, &mut gen).unwrap();
        let names: Vec<&str> = merged.vals.iter().map(|d| d.name.as_str()).collect();
        assert_eq!(names.len(), 4);
        let uniq: BTreeSet<&&str> = names.iter().collect();
        assert_eq!(uniq.len(), 4, "names not distinct: {names:?}");
        // The second helper's use site was renamed consistently.
        let b_defn = merged.vals.iter().find(|d| d.name.as_str() == "b").unwrap();
        match &b_defn.body {
            Expr::Lambda(lam) => match &lam.body {
                Expr::App(f, _) => match &**f {
                    Expr::Var(v) => {
                        assert_ne!(v.as_str(), "helper");
                        assert_eq!(v.base(), "helper");
                    }
                    other => panic!("unexpected {other:?}"),
                },
                other => panic!("unexpected {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn missing_provides_and_excess_imports_error() {
        let (c, units) = compound_parts(
            "(compound (import) (export)
               (link ((unit (import) (export)) (with) (provides ghost))))",
        );
        let mut gen = NameGen::new();
        assert!(matches!(
            merge_compound(&c, &units, &mut gen),
            Err(RuntimeError::MissingProvide { name }) if name.as_str() == "ghost"
        ));

        let (c, units) = compound_parts(
            "(compound (import) (export)
               (link ((unit (import x) (export) (init void)) (with) (provides))))",
        );
        assert!(matches!(
            merge_compound(&c, &units, &mut gen),
            Err(RuntimeError::ExcessImport { name }) if name.as_str() == "x"
        ));
    }

    #[test]
    fn datatype_operations_rename_with_their_unit() {
        let (c, units) = compound_parts(
            "(compound (import) (export go)
               (link ((unit (import) (export go)
                        (datatype t (mk unmk int) t?)
                        (define go (lambda () (unmk (mk 3)))))
                      (with) (provides go))
                     ((unit (import) (export)
                        (datatype t (mk unmk int) t?)
                        (define local (lambda () (mk 1))))
                      (with) (provides))))",
        );
        let mut gen = NameGen::new();
        let merged = merge_compound(&c, &units, &mut gen).unwrap();
        assert_eq!(merged.types.len(), 2);
        // All datatype operation names in the merged unit are distinct.
        let mut ops = Vec::new();
        for td in &merged.types {
            if let TypeDefn::Data(d) = td {
                ops.extend(d.bound_val_names());
            }
        }
        let uniq: BTreeSet<_> = ops.iter().collect();
        assert_eq!(uniq.len(), ops.len(), "ops not distinct: {ops:?}");
    }
}
